//! Multi-tenant, multi-model serving: a registry of resident models.
//!
//! A deployment rarely serves one diffusion model. The [`ModelRegistry`]
//! keeps several U-Nets **resident** — each with its own precision
//! assignment, [`Denoiser`] schedule, and a private [`PackCache`] — so the
//! quantization artifacts of every resident model are built exactly once
//! per `(weight, precision)` pair and reused across every request, batch,
//! and serve call for the model's whole lifetime.
//!
//! The [`RegistryScheduler`] multiplexes a continuous-batching loop over
//! the registry: requests are tagged with a [`ModelId`] and a
//! [`TenantId`], each model keeps its own in-flight batch (capped at
//! [`RegistryScheduler::max_batch`]), and at every step boundary each
//! model runs its own admission engine — the same sealed
//! [`crate::serve::Policy`] path the single-model [`crate::serve::Scheduler`]
//! uses, selected by [`RegistryScheduler::policy`] (deterministic
//! round-robin tenant fair share by default, with a per-model resume
//! cursor). Each outer tick then advances every non-idle model by one
//! batched Heun round.
//!
//! # Determinism contract
//!
//! The registry inherits the serving contract unchanged: every request's
//! image is bitwise identical to the solo [`crate::sample`] run with the
//! same `(seed, steps)` on its model, in either execution mode, at any
//! `SQDM_THREADS`. Model co-residency, tenancy, admission timing, and
//! pack-cache reuse are all invisible to a stream's arithmetic. Admission
//! order itself is deterministic (a pure function of the request set), so
//! [`RegistryStats`] are reproducible run to run.
//!
//! # Allocation discipline
//!
//! The serve loop runs inside an [`arena::scope`]: after the first round
//! of each batch shape, every transient buffer — packed states, im2col
//! scratch, coefficient vectors, activation tensors — is a pool hit, and
//! the steady state performs (approximately) zero heap allocations. The
//! `serve_steady_state` scenario in `sqdm-bench` pins this with a
//! counting allocator.

use crate::cost::CostModelConfig;
use crate::denoiser::Denoiser;
use crate::error::{EdmError, Result};
use crate::model::{UNet, UNetConfig};
use crate::serve::{
    validate_unique_ids, AdmissionEngine, AdmissionPolicy, Admitted, Backpressure, BatchSampler,
    InflightRef, RequestStats, ScheduledRequest, ServeStats, ServedOutput, Stream, TenantId,
    TenantRollup,
};
use sqdm_nn::PackCache;
use sqdm_quant::PrecisionAssignment;
use sqdm_tensor::arena;
use std::time::Instant;

/// Index of a resident model inside its [`ModelRegistry`].
pub type ModelId = usize;

/// One model held resident for serving: the network, its precision
/// assignment, its denoiser schedule, and the pack cache that amortizes
/// weight packing across the model's lifetime.
#[derive(Debug)]
pub struct ResidentModel {
    name: String,
    net: UNet,
    assignment: Option<PrecisionAssignment>,
    den: Denoiser,
    packs: PackCache,
}

impl ResidentModel {
    /// The human-readable name the model was registered under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The model's precision assignment (`None` = full precision).
    pub fn assignment(&self) -> Option<&PrecisionAssignment> {
        self.assignment.as_ref()
    }

    /// The model's U-Net configuration.
    pub fn config(&self) -> &UNetConfig {
        self.net.config()
    }

    /// How many weight packs this model's cache has built so far. Flat
    /// after warmup: serving never rebuilds a pack.
    pub fn pack_builds(&self) -> usize {
        self.packs.builds()
    }

    /// The model's denoiser schedule.
    pub fn denoiser(&self) -> Denoiser {
        self.den
    }

    /// Split borrow for a serve round: the mutable network alongside the
    /// precision assignment and pack cache it serves with. Needed because
    /// a round mutates the net while reading the other two fields.
    pub(crate) fn serve_parts(&mut self) -> (&mut UNet, Option<&PrecisionAssignment>, &PackCache) {
        (&mut self.net, self.assignment.as_ref(), &self.packs)
    }
}

/// Several resident models, each owning its pack cache.
///
/// Registration order assigns dense [`ModelId`]s starting at 0.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: Vec<ResidentModel>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ModelRegistry::default()
    }

    /// Makes a model resident and returns its id. The model's pack cache
    /// starts cold; the first batch it serves warms it and every later
    /// batch reuses the packs.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        net: UNet,
        assignment: Option<PrecisionAssignment>,
        den: Denoiser,
    ) -> ModelId {
        self.models.push(ResidentModel {
            name: name.into(),
            net,
            assignment,
            den,
            packs: PackCache::new(),
        });
        self.models.len() - 1
    }

    /// The resident model with this id.
    pub fn model(&self, id: ModelId) -> Option<&ResidentModel> {
        self.models.get(id)
    }

    /// Mutable access to a resident model, for driving serve rounds.
    pub(crate) fn model_mut(&mut self, id: ModelId) -> Option<&mut ResidentModel> {
        self.models.get_mut(id)
    }

    /// Number of resident models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the registry has no resident models.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Total weight packs built across all resident models. Measured
    /// before/after a serve call this exposes redundant pack builds; the
    /// registry contract is that the delta is zero once every model has
    /// served one batch per precision assignment.
    pub fn pack_builds(&self) -> usize {
        self.models.iter().map(|m| m.packs.builds()).sum()
    }
}

/// A scheduled request addressed to one resident model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryRequest {
    /// The target model.
    pub model: ModelId,
    /// The request and its arrival step.
    pub scheduled: ScheduledRequest,
}

impl RegistryRequest {
    /// Addresses a scheduled request to a model.
    pub fn new(model: ModelId, scheduled: ScheduledRequest) -> Self {
        RegistryRequest { model, scheduled }
    }
}

/// Aggregate statistics of one registry serve: per-model [`ServeStats`]
/// plus the shared virtual clock.
#[derive(Debug, Clone, Default)]
pub struct RegistryStats {
    /// Total batched rounds executed, summed over models.
    pub rounds: usize,
    /// Value of the shared virtual clock when the last stream retired.
    pub final_step: usize,
    /// Per-model serving statistics, indexed by [`ModelId`]. Request
    /// entries appear under the model they were addressed to.
    pub per_model: Vec<ServeStats>,
}

impl RegistryStats {
    /// Statistics of one request, searched across all models.
    pub fn request(&self, id: u64) -> Option<&RequestStats> {
        self.per_model.iter().find_map(|s| s.request(id))
    }

    /// Per-tenant rollups aggregated across every model, ascending by
    /// tenant id.
    pub fn tenant_rollups(&self) -> Vec<TenantRollup> {
        let all = ServeStats {
            requests: self
                .per_model
                .iter()
                .flat_map(|s| s.requests.iter().cloned())
                .collect(),
            ..ServeStats::default()
        };
        all.tenant_rollups()
    }

    /// The rollup of one tenant, if it submitted any requests.
    pub fn tenant(&self, tenant: TenantId) -> Option<TenantRollup> {
        self.tenant_rollups()
            .into_iter()
            .find(|r| r.tenant == tenant)
    }
}

/// Continuous-batching scheduler over a [`ModelRegistry`].
///
/// Tenancy-aware admission through a per-model
/// [`crate::serve::Policy`] engine (fair share by default); one batched
/// Heun round per non-idle model per tick of the shared virtual clock.
#[derive(Debug, Clone, Copy)]
pub struct RegistryScheduler {
    /// Per-model in-flight batch capacity.
    pub max_batch: usize,
    /// Record per-stream temporal traces (off by default: resident
    /// serving favors the zero-allocation steady state).
    pub record_traces: bool,
    /// Admission policy, instantiated once per model (each model keeps
    /// its own policy state, e.g. the fair-share resume cursor).
    pub policy: AdmissionPolicy,
    /// Cost model powering per-candidate estimates and per-round
    /// energy/occupancy accounting, instantiated once per model.
    pub cost: CostModelConfig,
}

impl RegistryScheduler {
    /// A fair-share scheduler with the given per-model batch capacity and
    /// trace recording disabled.
    pub fn new(max_batch: usize) -> Self {
        RegistryScheduler {
            max_batch,
            record_traces: false,
            policy: AdmissionPolicy::FairShare,
            cost: CostModelConfig::Noop,
        }
    }

    /// This scheduler with trace recording switched on or off.
    #[must_use]
    pub fn with_traces(mut self, record: bool) -> Self {
        self.record_traces = record;
        self
    }

    /// This scheduler with a different admission policy.
    #[must_use]
    pub fn with_policy(mut self, policy: AdmissionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// This scheduler with a different cost model.
    #[must_use]
    pub fn with_cost_model(mut self, cost: CostModelConfig) -> Self {
        self.cost = cost;
        self
    }

    /// Serves every request to completion and returns the outputs in
    /// submission order plus the aggregate statistics.
    ///
    /// # Errors
    ///
    /// Returns [`EdmError::Config`] for `max_batch == 0`, an unknown
    /// [`ModelId`], duplicate request ids (globally, across models), or a
    /// step budget below 2; propagates model errors.
    pub fn run(
        &self,
        registry: &mut ModelRegistry,
        requests: &[RegistryRequest],
    ) -> Result<(Vec<ServedOutput>, RegistryStats)> {
        if self.max_batch == 0 {
            return Err(EdmError::Config {
                reason: "registry scheduler max_batch must be at least 1".into(),
            });
        }
        validate_unique_ids(requests.iter().map(|r| r.scheduled.request.id))?;
        let nm = registry.models.len();
        for r in requests {
            if r.model >= nm {
                return Err(EdmError::Config {
                    reason: format!(
                        "request {} targets model {} but the registry holds {}",
                        r.scheduled.request.id, r.model, nm
                    ),
                });
            }
            if r.scheduled.request.steps < 2 {
                return Err(EdmError::Config {
                    reason: format!(
                        "request {} has step budget {}; at least 2 required",
                        r.scheduled.request.id, r.scheduled.request.steps
                    ),
                });
            }
        }

        // Partition submissions per model, keeping the global submission
        // index so outputs come back in submission order.
        let mut reqs: Vec<Vec<ScheduledRequest>> = vec![Vec::new(); nm];
        let mut global: Vec<Vec<usize>> = vec![Vec::new(); nm];
        for (gi, r) in requests.iter().enumerate() {
            reqs[r.model].push(r.scheduled);
            global[r.model].push(gi);
        }

        let samplers: Vec<BatchSampler> = registry
            .models
            .iter()
            .map(|m| BatchSampler::new(m.den).with_traces(self.record_traces))
            .collect();
        let mcfgs: Vec<UNetConfig> = registry.models.iter().map(|m| *m.net.config()).collect();

        // Per-model scheduler state, mirroring `Scheduler::run_with_packs`:
        // each model owns an unbounded admission engine running the
        // scheduler's policy with private state.
        let mut future: Vec<Vec<usize>> = (0..nm)
            .map(|m| {
                let mut f: Vec<usize> = (0..reqs[m].len()).collect();
                f.sort_by_key(|&i| (reqs[m][i].arrival_step, i));
                f
            })
            .collect();
        let mut engines: Vec<AdmissionEngine> = (0..nm)
            .map(|_| AdmissionEngine::with_cost(self.policy, None, self.cost, self.max_batch))
            .collect();
        let mut streams: Vec<Vec<Stream>> = (0..nm).map(|_| Vec::new()).collect();
        let mut owner: Vec<Vec<usize>> = (0..nm).map(|_| Vec::new()).collect();
        let mut inflight: Vec<Vec<usize>> = (0..nm).map(|_| Vec::new()).collect();
        let mut parked_at: Vec<Vec<usize>> = (0..nm).map(|m| vec![0; reqs[m].len()]).collect();
        let mut per_model: Vec<ServeStats> = (0..nm)
            .map(|m| {
                // Rounds never exceed the model's total step budget, so
                // reserving the per-round timelines up front keeps the
                // steady-state serving loop free of amortized growth
                // (the zero-allocation gate measures exactly this).
                let round_cap: usize = reqs[m].iter().map(|r| r.request.steps).sum();
                ServeStats {
                    requests: reqs[m]
                        .iter()
                        .map(|r| RequestStats {
                            id: r.request.id,
                            tenant: r.request.tenant,
                            arrival_step: r.arrival_step,
                            admitted_step: 0,
                            completed_step: 0,
                            queue_delay: 0,
                            steps_in_batch: 0,
                            parked_steps: 0,
                            latency: 0,
                        })
                        .collect(),
                    step_latency_ns: Vec::with_capacity(round_cap),
                    batch_occupancy: Vec::with_capacity(round_cap),
                    queue_depth: Vec::with_capacity(round_cap),
                    round_energy_pj: Vec::with_capacity(round_cap),
                    round_occupancy: Vec::with_capacity(round_cap),
                    ..ServeStats::default()
                }
            })
            .collect();
        let mut clock = 0usize;
        let mut total_rounds = 0usize;

        arena::scope(|| {
            loop {
                let busy = inflight.iter().any(|f| !f.is_empty());
                let queued = engines.iter().any(|e| e.has_work());
                let waiting = future.iter().any(|p| !p.is_empty());
                if !busy && !waiting && !queued {
                    break;
                }
                if !busy && !queued {
                    // Idle: jump the shared clock to the earliest arrival.
                    let reqs = &reqs;
                    let earliest = future
                        .iter()
                        .enumerate()
                        .flat_map(|(m, p)| p.iter().map(move |&i| reqs[m][i].arrival_step))
                        .min()
                        .expect("future nonempty when nothing is in flight or queued");
                    clock = clock.max(earliest);
                }
                // Per model: move arrivals into the engine, then run the
                // policy at the step boundary (shared path with the
                // single-model scheduler).
                for m in 0..nm {
                    while let Some(&i) = future[m].first() {
                        if reqs[m][i].arrival_step > clock {
                            break;
                        }
                        future[m].remove(0);
                        let verdict = engines[m].enqueue(reqs[m][i], i);
                        debug_assert!(
                            matches!(verdict, Backpressure::Accepted),
                            "registry engines are unbounded"
                        );
                    }
                    let inflight_refs: Vec<InflightRef> = inflight[m]
                        .iter()
                        .map(|&k| InflightRef {
                            stream_key: k,
                            scheduled: reqs[m][owner[m][k]],
                            submit_index: owner[m][k],
                            remaining: streams[m][k].request.steps - streams[m][k].cursor,
                        })
                        .collect();
                    let actions =
                        engines[m].boundary(&inflight_refs, self.max_batch, clock, future[m].len());
                    for &k in &actions.park {
                        inflight[m].retain(|&key| key != k);
                        parked_at[m][owner[m][k]] = clock;
                        per_model[m].preemptions += 1;
                    }
                    for admitted in &actions.admit {
                        match *admitted {
                            Admitted::Fresh {
                                scheduled,
                                submit_index,
                            } => {
                                let stream =
                                    samplers[m].make_stream(&mcfgs[m], &scheduled.request)?;
                                owner[m].push(submit_index);
                                inflight[m].push(streams[m].len());
                                streams[m].push(stream);
                                per_model[m].requests[submit_index].admitted_step = clock;
                                per_model[m].requests[submit_index].queue_delay =
                                    clock - scheduled.arrival_step;
                            }
                            Admitted::Resumed {
                                stream_key,
                                submit_index,
                            } => {
                                inflight[m].push(stream_key);
                                per_model[m].requests[submit_index].parked_steps +=
                                    clock - parked_at[m][submit_index];
                            }
                        }
                    }
                }
                if inflight.iter().all(|f| f.is_empty()) {
                    // Nothing admitted anywhere (e.g. gangs still
                    // assembling): jump to the next arrival, or flag a
                    // stalled policy.
                    let reqs = &reqs;
                    if let Some(next) = future
                        .iter()
                        .enumerate()
                        .flat_map(|(m, p)| p.iter().map(move |&i| reqs[m][i].arrival_step))
                        .filter(|&a| a > clock)
                        .min()
                    {
                        clock = next;
                        continue;
                    }
                    if engines.iter().any(|e| e.has_work()) {
                        return Err(EdmError::Config {
                            reason: "admission stalled: queued work with no in-flight \
                                     streams and no future arrivals"
                                .into(),
                        });
                    }
                    continue;
                }
                // One batched Heun round per non-idle model.
                for m in 0..nm {
                    if inflight[m].is_empty() {
                        continue;
                    }
                    let model = &mut registry.models[m];
                    let t0 = Instant::now();
                    samplers[m].round(
                        &mut model.net,
                        &mut streams[m],
                        &inflight[m],
                        model.assignment.as_ref(),
                        &model.packs,
                    )?;
                    per_model[m]
                        .step_latency_ns
                        .push(t0.elapsed().as_nanos() as u64);
                    per_model[m].batch_occupancy.push(inflight[m].len());
                    per_model[m].queue_depth.push(engines[m].queue_len());
                    let (round_pj, round_occ) = engines[m].round_accounting(inflight[m].len());
                    per_model[m].round_energy_pj.push(round_pj);
                    per_model[m].round_occupancy.push(round_occ);
                    per_model[m].rounds += 1;
                    total_rounds += 1;
                }
                clock += 1;
                // Retire exhausted streams.
                for m in 0..nm {
                    let (streams_m, owner_m, stats_m) = (&streams[m], &owner[m], &mut per_model[m]);
                    let reqs_m = &reqs[m];
                    inflight[m].retain(|&k| {
                        let done = streams_m[k].cursor >= streams_m[k].request.steps;
                        if done {
                            let i = owner_m[k];
                            stats_m.requests[i].completed_step = clock;
                            stats_m.requests[i].steps_in_batch = clock
                                - stats_m.requests[i].admitted_step
                                - stats_m.requests[i].parked_steps;
                            stats_m.requests[i].latency = clock - reqs_m[i].arrival_step;
                        }
                        !done
                    });
                }
            }
            Ok::<(), EdmError>(())
        })?;

        for s in &mut per_model {
            s.final_step = clock;
        }
        let stats = RegistryStats {
            rounds: total_rounds,
            final_step: clock,
            per_model,
        };

        // Outputs back in global submission order.
        let mut slots: Vec<Option<ServedOutput>> = (0..requests.len()).map(|_| None).collect();
        for m in 0..nm {
            for (k, stream) in std::mem::take(&mut streams[m]).into_iter().enumerate() {
                slots[global[m][owner[m][k]]] = Some(stream.into_output());
            }
        }
        let outputs = slots
            .into_iter()
            .map(|o| o.expect("every request was admitted and served"))
            .collect();
        Ok((outputs, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{sample, SamplerConfig};
    use crate::schedule::EdmSchedule;
    use crate::serve::ServeRequest;
    use sqdm_quant::{BlockPrecision, ExecMode, QuantFormat};
    use sqdm_tensor::{Rng, Tensor};

    fn int8_native() -> PrecisionAssignment {
        PrecisionAssignment::uniform(
            crate::model::block_ids::COUNT,
            BlockPrecision::uniform(QuantFormat::int8()),
            "INT8",
        )
        .with_mode(ExecMode::NativeInt)
    }

    fn bits(t: &Tensor) -> Vec<u32> {
        t.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    fn two_model_registry() -> ModelRegistry {
        let den = Denoiser::new(EdmSchedule::default());
        let mut registry = ModelRegistry::new();
        let mut rng = Rng::seed_from(31);
        let net_a = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
        let net_b = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
        registry.register("quantized", net_a, Some(int8_native()), den);
        registry.register("full-precision", net_b, None, den);
        registry
    }

    fn req(
        model: ModelId,
        id: u64,
        tenant: TenantId,
        steps: usize,
        arrival: usize,
    ) -> RegistryRequest {
        RegistryRequest::new(
            model,
            ScheduledRequest::new(ServeRequest::new(id, steps).tenant(tenant), arrival),
        )
    }

    #[test]
    fn registry_serving_is_bitwise_identical_to_solo_sampling_per_model() {
        let mut registry = two_model_registry();
        let requests = [
            req(0, 10, 1, 3, 0),
            req(1, 11, 2, 2, 0),
            req(0, 12, 2, 2, 1),
            req(1, 13, 1, 4, 3),
        ];
        let sched = RegistryScheduler::new(2);
        let (outputs, stats) = sched.run(&mut registry, &requests).unwrap();
        assert_eq!(outputs.len(), 4);
        // Solo references on fresh, identically seeded models.
        let den = Denoiser::new(EdmSchedule::default());
        let mut rng = Rng::seed_from(31);
        let mut net_a = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
        let mut net_b = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
        let asg = int8_native();
        for (r, out) in requests.iter().zip(&outputs) {
            assert_eq!(r.scheduled.request.id, out.id);
            let (net, asg): (&mut UNet, Option<&PrecisionAssignment>) = if r.model == 0 {
                (&mut net_a, Some(&asg))
            } else {
                (&mut net_b, None)
            };
            let mut rr = Rng::seed_from(r.scheduled.request.seed);
            let solo = sample(
                net,
                &den,
                1,
                SamplerConfig {
                    steps: r.scheduled.request.steps,
                },
                asg,
                &mut rr,
            )
            .unwrap();
            assert_eq!(bits(&out.image), bits(&solo), "request {}", out.id);
        }
        // Both models served; the shared clock covers the longest stream.
        assert_eq!(stats.per_model.len(), 2);
        assert!(stats.rounds >= 4);
        assert!(stats.final_step >= 5);
    }

    #[test]
    fn registry_builds_packs_once_across_serves() {
        let mut registry = two_model_registry();
        let requests = [req(0, 0, 1, 2, 0), req(0, 1, 2, 3, 0), req(1, 2, 1, 2, 0)];
        let sched = RegistryScheduler::new(2);
        let (out1, _) = sched.run(&mut registry, &requests).unwrap();
        let builds = registry.pack_builds();
        assert!(builds > 0, "the quantized model must have packed weights");
        // Even the full-precision reference path caches its FP16 weight
        // casts; what matters is that NO model rebuilds anything later.
        assert!(registry.model(1).unwrap().pack_builds() > 0);
        // Second serve of the same registry: zero new packs, same bits.
        let (out2, _) = sched.run(&mut registry, &requests).unwrap();
        assert_eq!(registry.pack_builds(), builds, "packs were rebuilt");
        for (a, b) in out1.iter().zip(&out2) {
            assert_eq!(bits(&a.image), bits(&b.image));
        }
    }

    #[test]
    fn fair_share_cycles_tenants_per_model_and_stats_roll_up() {
        let mut registry = two_model_registry();
        // Model 0: tenant 5 floods, tenant 3 submits one late-indexed
        // request; fair share admits tenant 3 in the first wave.
        let requests = [
            req(0, 0, 5, 2, 0),
            req(0, 1, 5, 2, 0),
            req(0, 2, 5, 2, 0),
            req(0, 3, 3, 2, 0),
            req(1, 4, 5, 2, 0),
        ];
        let sched = RegistryScheduler::new(2);
        let (_, stats) = sched.run(&mut registry, &requests).unwrap();
        assert_eq!(stats.request(3).unwrap().admitted_step, 0);
        assert_eq!(stats.request(0).unwrap().admitted_step, 0);
        assert_eq!(stats.request(1).unwrap().admitted_step, 2);
        assert_eq!(stats.request(2).unwrap().admitted_step, 2);
        // Model 1 runs independently at full capacity.
        assert_eq!(stats.request(4).unwrap().admitted_step, 0);
        // Rollups aggregate across models: tenant 5 appears in both.
        let r5 = stats.tenant(5).unwrap();
        assert_eq!(r5.requests, 4);
        assert_eq!(r5.total_steps, 8);
        let r3 = stats.tenant(3).unwrap();
        assert_eq!(r3.requests, 1);
        assert!(stats.tenant(9).is_none());
        let rollups = stats.tenant_rollups();
        assert_eq!(
            rollups.iter().map(|r| r.tenant).collect::<Vec<_>>(),
            vec![3, 5]
        );
    }

    #[test]
    fn registry_rejects_bad_requests() {
        let mut registry = two_model_registry();
        let sched = RegistryScheduler::new(2);
        // Unknown model.
        let bad_model = [req(7, 0, 0, 2, 0)];
        assert!(sched.run(&mut registry, &bad_model).is_err());
        // Duplicate ids across different models.
        let dup = [req(0, 1, 0, 2, 0), req(1, 1, 0, 2, 0)];
        assert!(sched.run(&mut registry, &dup).is_err());
        // Step budget below the Karras minimum.
        let short = [req(0, 2, 0, 1, 0)];
        assert!(sched.run(&mut registry, &short).is_err());
        // Zero batch capacity.
        assert!(RegistryScheduler::new(0)
            .run(&mut registry, &[req(0, 3, 0, 2, 0)])
            .is_err());
    }
}
