//! Batched multi-request inference serving.
//!
//! Production diffusion serving does not generate one image at a time: a
//! [`BatchSampler`] packs N concurrent denoising requests — possibly at
//! **different** noise steps, with different step budgets — into a single
//! batched U-Net forward per sampler round, so per-step fixed costs
//! (weight (re)quantization on the integer engine, fake-quant weight
//! passes, im2col lowerings, GEMM operand packs) are paid once per round
//! instead of once per request, and the worker pool sees batch × rows of
//! work at a time.
//!
//! # Determinism contract
//!
//! Serving is **bitwise transparent**: the image produced for a request is
//! bit-for-bit the image [`crate::sample`] would produce for the same
//! `(seed, steps)` with the same model and precision assignment — at any
//! batch composition, in either [`sqdm_quant::ExecMode`], at any
//! `SQDM_THREADS`. Two ingredients make this hold:
//!
//! * every packed forward runs with [`RunConfig::batched`], which
//!   quantizes activations per request (one grid per stream, never across
//!   the batch) while weights are still packed once per layer call;
//! * all sampler arithmetic (Heun updates, preconditioning) is
//!   per-sample, and the batched kernels produce each output element with
//!   the exact single-request operation sequence.
//!
//! # Temporal sparsity per stream
//!
//! Each request accumulates its own per-block [`TemporalTrace`] while it
//! denoises, so the change masks that drive the sparse-delta kernel
//! (`sqdm_tensor::ops::int::qgemm_delta_multi`) stay per stream: one
//! request at a fully-dense step coexists with a neighbor that skips
//! nearly all of its reduction rows. [`delta_row_masks`] assembles the
//! concatenated per-stream row mask in exactly the layout that kernel
//! consumes.

use crate::denoiser::Denoiser;
use crate::error::{EdmError, Result};
use crate::model::{ActEvent, RunConfig, UNet};
use serde::{Deserialize, Serialize};
use sqdm_quant::PrecisionAssignment;
use sqdm_sparsity::{channel_sparsity, ChangeMask, TemporalTrace};
use sqdm_tensor::{Rng, Tensor};
use std::collections::BTreeMap;

/// One queued generation request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeRequest {
    /// Caller-chosen identifier, echoed in the matching [`ServedOutput`].
    pub id: u64,
    /// Seed of the request's private noise stream. A request's result
    /// depends only on `(seed, steps)` — never on its batch neighbors.
    pub seed: u64,
    /// Sigma-grid points for this request (model evaluations ≈ 2·steps−1);
    /// must be at least 2 (the Karras grid needs two endpoints). Requests
    /// in one batch may use different budgets; streams simply retire early
    /// and the batch shrinks.
    pub steps: usize,
}

impl ServeRequest {
    /// A request with the given id, seeding the noise stream from the id.
    pub fn new(id: u64, steps: usize) -> Self {
        ServeRequest {
            id,
            seed: id,
            steps,
        }
    }
}

/// A finished generation plus its per-stream temporal-sparsity record.
#[derive(Debug, Clone)]
pub struct ServedOutput {
    /// The request identifier.
    pub id: u64,
    /// The generated image, `[1, C, S, S]`.
    pub image: Tensor,
    /// The step budget the request ran with.
    pub steps: usize,
    /// Per-(block, stage) activation-sparsity traces recorded at each of
    /// this stream's denoising steps (first Heun evaluation per step).
    traces: BTreeMap<(usize, usize), TemporalTrace>,
}

impl ServedOutput {
    /// The temporal trace of one observed `(block, stage)` activation, or
    /// `None` when tracing was disabled or the block was not observed.
    pub fn trace(&self, block: usize, stage: usize) -> Option<&TemporalTrace> {
        self.traces.get(&(block, stage))
    }

    /// The `(block, stage)` keys with recorded traces, in order.
    pub fn traced_keys(&self) -> Vec<(usize, usize)> {
        self.traces.keys().copied().collect()
    }

    /// This stream's change mask for one observed activation at `step`: the
    /// channels whose sparsity moved more than `tol` since the stream's
    /// previous denoising step (step 0 is always fully dense).
    pub fn change_mask(
        &self,
        block: usize,
        stage: usize,
        step: usize,
        tol: f64,
    ) -> Option<ChangeMask> {
        self.trace(block, stage).map(|t| t.change_mask(step, tol))
    }
}

/// Builds the concatenated per-stream reduction-row mask for the batched
/// sparse-delta GEMM (`sqdm_tensor::ops::int::qgemm_delta_multi`): stream
/// `s`'s channel mask at `step` is expanded to `rows_per_channel`
/// consecutive reduction rows (`kh · kw` for a convolution lowered by
/// im2col) and streams are laid out back to back — `mask[s · k + r]`.
///
/// Returns `None` if any stream lacks a trace for `(block, stage)` or has
/// not reached `step`.
pub fn delta_row_masks(
    outputs: &[ServedOutput],
    block: usize,
    stage: usize,
    step: usize,
    tol: f64,
    rows_per_channel: usize,
) -> Option<Vec<bool>> {
    let mut mask = Vec::new();
    for out in outputs {
        let trace = out.trace(block, stage)?;
        if step >= trace.steps() {
            return None;
        }
        mask.extend(trace.change_mask(step, tol).expand_rows(rows_per_channel));
    }
    Some(mask)
}

/// Packs concurrent denoising requests into batched Heun steps.
#[derive(Debug, Clone, Copy)]
pub struct BatchSampler {
    /// The preconditioned denoiser driving every stream.
    pub den: Denoiser,
    /// Record per-stream [`TemporalTrace`]s during serving (adds one
    /// observer pass per step; disable for pure-throughput serving).
    pub record_traces: bool,
}

/// One in-flight request stream.
struct Stream {
    request: ServeRequest,
    /// This stream's sigma grid, `steps + 1` points ending at 0.
    grid: Vec<f32>,
    /// Next step index; the stream retires at `cursor == request.steps`.
    cursor: usize,
    /// Current state, `[1, C, S, S]`.
    x: Tensor,
    traces: BTreeMap<(usize, usize), TemporalTrace>,
}

impl BatchSampler {
    /// Creates a batch sampler with per-stream trace recording enabled.
    pub fn new(den: Denoiser) -> Self {
        BatchSampler {
            den,
            record_traces: true,
        }
    }

    /// This sampler with trace recording switched on or off.
    pub fn with_traces(mut self, record: bool) -> Self {
        self.record_traces = record;
        self
    }

    /// Serves a batch of requests to completion and returns one output per
    /// request, in request order.
    ///
    /// Each sampler round advances every in-flight stream by one Heun step
    /// with **one** batched denoiser evaluation (plus one batched
    /// correction evaluation for the streams not on their final step).
    /// Streams that exhaust their step budget retire and the packed batch
    /// shrinks. See the module docs for the determinism contract.
    ///
    /// # Errors
    ///
    /// Returns [`EdmError::Config`] for a zero-step request and propagates
    /// model errors.
    pub fn run(
        &self,
        net: &mut UNet,
        requests: &[ServeRequest],
        assignment: Option<&PrecisionAssignment>,
    ) -> Result<Vec<ServedOutput>> {
        let mcfg = *net.config();
        let s = mcfg.image_size;
        let chw = mcfg.in_channels * s * s;
        let mut streams = Vec::with_capacity(requests.len());
        for req in requests {
            // The Karras grid needs at least two sigma points.
            if req.steps < 2 {
                return Err(EdmError::Config {
                    reason: format!(
                        "request {} has step budget {}; at least 2 required",
                        req.id, req.steps
                    ),
                });
            }
            let grid = self.den.schedule.sigma_steps(req.steps);
            let mut rng = Rng::seed_from(req.seed);
            let x = Tensor::randn([1, mcfg.in_channels, s, s], &mut rng).scale(grid[0]);
            streams.push(Stream {
                request: *req,
                grid,
                cursor: 0,
                x,
                traces: BTreeMap::new(),
            });
        }

        loop {
            let active: Vec<usize> = (0..streams.len())
                .filter(|&i| streams[i].cursor < streams[i].request.steps)
                .collect();
            if active.is_empty() {
                break;
            }
            // Pack the in-flight states into one [A, C, S, S] batch; every
            // stream contributes its own sigma, so streams at different
            // noise steps share the forward.
            let packed = pack_states(&streams, &active, chw)?;
            let sigmas: Vec<f32> = active
                .iter()
                .map(|&i| streams[i].grid[streams[i].cursor])
                .collect();
            let d0 = {
                let record = self.record_traces;
                let mut obs = |ev: ActEvent<'_>| {
                    record_event(&mut streams, &active, &ev);
                };
                let mut rc = RunConfig {
                    train: false,
                    assignment,
                    observer: if record { Some(&mut obs) } else { None },
                    batched: true,
                };
                self.den.denoise(net, &packed, &sigmas, &mut rc)?
            };
            // First-order (Euler) update per stream, exactly the arithmetic
            // of `crate::sample` on this stream's state.
            let mut midpoints: Vec<(usize, Tensor, Tensor)> = Vec::new(); // (stream, x_next, slope)
            for (slot, &i) in active.iter().enumerate() {
                let st = &streams[i];
                let (sig, sig_next) = (st.grid[st.cursor], st.grid[st.cursor + 1]);
                let d0_i = d0.batch_sample(slot)?;
                let slope = st.x.sub(&d0_i)?.scale(1.0 / sig);
                let mut x_next = st.x.clone();
                x_next.add_scaled(&slope, sig_next - sig)?;
                midpoints.push((i, x_next, slope));
            }
            // Heun correction, batched over the streams whose next sigma is
            // nonzero (a stream's final step is first-order, as in
            // `crate::sample`).
            let corr: Vec<usize> = midpoints
                .iter()
                .enumerate()
                .filter(|(_, (i, _, _))| {
                    let st = &streams[*i];
                    st.grid[st.cursor + 1] > 0.0
                })
                .map(|(slot, _)| slot)
                .collect();
            if !corr.is_empty() {
                let mut packed_next = Vec::with_capacity(corr.len() * chw);
                let mut sig_nexts = Vec::with_capacity(corr.len());
                for &slot in &corr {
                    let (i, x_next, _) = &midpoints[slot];
                    packed_next.extend_from_slice(x_next.as_slice());
                    let st = &streams[*i];
                    sig_nexts.push(st.grid[st.cursor + 1]);
                }
                let packed_next =
                    Tensor::from_vec(packed_next, [corr.len(), mcfg.in_channels, s, s])?;
                let d1 = {
                    let mut rc = RunConfig {
                        train: false,
                        assignment,
                        observer: None,
                        batched: true,
                    };
                    self.den.denoise(net, &packed_next, &sig_nexts, &mut rc)?
                };
                for (cslot, &slot) in corr.iter().enumerate() {
                    let (i, x_next, slope) = &midpoints[slot];
                    let st = &streams[*i];
                    let (sig, sig_next) = (st.grid[st.cursor], st.grid[st.cursor + 1]);
                    let d1_i = d1.batch_sample(cslot)?;
                    let slope2 = x_next.sub(&d1_i)?.scale(1.0 / sig_next);
                    let mut avg = slope.clone();
                    avg.add_scaled(&slope2, 1.0)?;
                    let mut corrected = st.x.clone();
                    corrected.add_scaled(&avg, 0.5 * (sig_next - sig))?;
                    midpoints[slot].1 = corrected;
                }
            }
            for (i, x_next, _) in midpoints {
                streams[i].x = x_next;
                streams[i].cursor += 1;
            }
        }

        Ok(streams
            .into_iter()
            .map(|st| ServedOutput {
                id: st.request.id,
                image: st.x,
                steps: st.request.steps,
                traces: st.traces,
            })
            .collect())
    }
}

/// Concatenates the active streams' states along the batch axis.
fn pack_states(streams: &[Stream], active: &[usize], chw: usize) -> Result<Tensor> {
    let dims = streams[active[0]].x.dims();
    let mut packed = Vec::with_capacity(active.len() * chw);
    for &i in active {
        packed.extend_from_slice(streams[i].x.as_slice());
    }
    Ok(Tensor::from_vec(
        packed,
        [active.len(), dims[1], dims[2], dims[3]],
    )?)
}

/// Splits a packed activation event per stream and appends one trace step
/// to each active stream's `(block, stage)` trace.
fn record_event(streams: &mut [Stream], active: &[usize], ev: &ActEvent<'_>) {
    let c = ev.tensor.dims()[1];
    for (slot, &i) in active.iter().enumerate() {
        let sample = ev
            .tensor
            .batch_sample(slot)
            .expect("observed activation is [A, C, H, W]");
        let sparsity = channel_sparsity(&sample);
        streams[i]
            .traces
            .entry((ev.block_index, ev.stage))
            .or_insert_with(|| TemporalTrace::new(c))
            .push_step(sparsity);
    }
}

/// Convenience wrapper: serves `requests` on a fresh [`BatchSampler`] and
/// returns the outputs in request order.
///
/// # Errors
///
/// Propagates [`BatchSampler::run`] errors.
pub fn serve_batch(
    net: &mut UNet,
    den: &Denoiser,
    requests: &[ServeRequest],
    assignment: Option<&PrecisionAssignment>,
) -> Result<Vec<ServedOutput>> {
    BatchSampler::new(*den).run(net, requests, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::UNetConfig;
    use crate::sampler::{sample, SamplerConfig};
    use crate::schedule::EdmSchedule;
    use sqdm_quant::{BlockPrecision, ExecMode, QuantFormat};

    fn fixture() -> (UNet, Denoiser) {
        let mut rng = Rng::seed_from(1);
        let net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
        (net, Denoiser::new(EdmSchedule::default()))
    }

    fn bits(t: &Tensor) -> Vec<u32> {
        t.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn serving_is_bitwise_identical_to_individual_sampling() {
        let (mut net, den) = fixture();
        let requests = [
            ServeRequest {
                id: 0,
                seed: 11,
                steps: 3,
            },
            ServeRequest {
                id: 1,
                seed: 12,
                steps: 5,
            },
            ServeRequest {
                id: 2,
                seed: 13,
                steps: 3,
            },
        ];
        let served = serve_batch(&mut net, &den, &requests, None).unwrap();
        assert_eq!(served.len(), 3);
        for (req, out) in requests.iter().zip(&served) {
            assert_eq!(req.id, out.id);
            let mut rng = Rng::seed_from(req.seed);
            let single = sample(
                &mut net,
                &den,
                1,
                SamplerConfig { steps: req.steps },
                None,
                &mut rng,
            )
            .unwrap();
            assert_eq!(out.image.dims(), single.dims());
            assert_eq!(bits(&out.image), bits(&single), "request {}", req.id);
        }
    }

    #[test]
    fn quantized_serving_matches_individual_sampling_in_both_modes() {
        let (mut net, den) = fixture();
        let base = PrecisionAssignment::uniform(
            crate::model::block_ids::COUNT,
            BlockPrecision::uniform(QuantFormat::int8()),
            "INT8",
        );
        for mode in [ExecMode::FakeQuant, ExecMode::NativeInt] {
            let asg = base.clone().with_mode(mode);
            let requests = [ServeRequest::new(7, 2), ServeRequest::new(8, 4)];
            let served = serve_batch(&mut net, &den, &requests, Some(&asg)).unwrap();
            for (req, out) in requests.iter().zip(&served) {
                let mut rng = Rng::seed_from(req.seed);
                let single = sample(
                    &mut net,
                    &den,
                    1,
                    SamplerConfig { steps: req.steps },
                    Some(&asg),
                    &mut rng,
                )
                .unwrap();
                assert_eq!(
                    bits(&out.image),
                    bits(&single),
                    "{mode:?} request {}",
                    req.id
                );
            }
        }
    }

    #[test]
    fn per_stream_traces_cover_every_step_and_yield_masks() {
        let (mut net, den) = fixture();
        let requests = [ServeRequest::new(1, 4), ServeRequest::new(2, 2)];
        let served = serve_batch(&mut net, &den, &requests, None).unwrap();
        for (req, out) in requests.iter().zip(&served) {
            let keys = out.traced_keys();
            assert!(!keys.is_empty(), "request {} recorded no traces", req.id);
            for &(b, st) in &keys {
                let trace = out.trace(b, st).unwrap();
                // One trace step per denoising step of *this* stream, even
                // though its batch neighbor ran a different budget.
                assert_eq!(trace.steps(), req.steps, "block {b} stage {st}");
                let m0 = out.change_mask(b, st, 0, 0.05).unwrap();
                assert!(m0.is_fully_dense(), "step 0 must recompute everything");
                assert!(out.change_mask(b, st, req.steps - 1, 0.05).is_some());
            }
        }
        // The per-stream masks assemble into the qgemm_delta_multi layout:
        // streams back to back, channels expanded to reduction rows.
        let (b, st) = served[0].traced_keys()[0];
        let rows = delta_row_masks(&served, b, st, 1, 0.05, 9).unwrap();
        let per: usize = served[0].trace(b, st).unwrap().channels() * 9;
        assert_eq!(rows.len(), served.len() * per);
        // Requesting a step beyond the shortest stream yields None.
        assert!(delta_row_masks(&served, b, st, 3, 0.05, 9).is_none());
    }

    #[test]
    fn trace_recording_can_be_disabled() {
        let (mut net, den) = fixture();
        let out = BatchSampler::new(den)
            .with_traces(false)
            .run(&mut net, &[ServeRequest::new(0, 2)], None)
            .unwrap();
        assert!(out[0].traced_keys().is_empty());
    }

    #[test]
    fn zero_step_requests_are_rejected_and_empty_batches_are_fine() {
        let (mut net, den) = fixture();
        assert!(serve_batch(&mut net, &den, &[ServeRequest::new(0, 0)], None).is_err());
        assert!(serve_batch(&mut net, &den, &[], None).unwrap().is_empty());
    }
}
