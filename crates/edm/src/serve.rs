//! Batched multi-request inference serving.
//!
//! Production diffusion serving does not generate one image at a time: a
//! [`BatchSampler`] packs N concurrent denoising requests — possibly at
//! **different** noise steps, with different step budgets — into a single
//! batched U-Net forward per sampler round, so per-step fixed costs
//! (weight (re)quantization on the integer engine, fake-quant weight
//! passes, im2col lowerings, GEMM operand packs) are paid once per round
//! instead of once per request, and the worker pool sees batch × rows of
//! work at a time.
//!
//! # Determinism contract
//!
//! Serving is **bitwise transparent**: the image produced for a request is
//! bit-for-bit the image [`crate::sample`] would produce for the same
//! `(seed, steps)` with the same model and precision assignment — at any
//! batch composition, in either [`sqdm_quant::ExecMode`], at any
//! `SQDM_THREADS`. Two ingredients make this hold:
//!
//! * every packed forward runs with [`RunConfig::batched`], which
//!   quantizes activations per request (one grid per stream, never across
//!   the batch) while weights are still packed once per layer call;
//! * all sampler arithmetic (Heun updates, preconditioning) is
//!   per-sample, and the batched kernels produce each output element with
//!   the exact single-request operation sequence.
//!
//! # Temporal sparsity per stream
//!
//! Each request accumulates its own per-block [`TemporalTrace`] while it
//! denoises, so the change masks that drive the sparse-delta kernel
//! (`sqdm_tensor::ops::int::qgemm_delta_multi`) stay per stream: one
//! request at a fully-dense step coexists with a neighbor that skips
//! nearly all of its reduction rows. [`delta_row_masks`] assembles the
//! concatenated per-stream row mask in exactly the layout that kernel
//! consumes.
//!
//! # Continuous batching
//!
//! [`BatchSampler::run`] serves a *static* batch: every request must be
//! present before the first Heun round. The [`Scheduler`] on top of it is
//! an Orca-style continuous-batching front-end: requests carry an
//! [`ScheduledRequest::arrival_step`] on a virtual clock (one tick per
//! outer denoise round), a pending queue feeds an in-flight batch capped
//! at [`Scheduler::max_batch`], and queued requests are admitted at step
//! boundaries — the packed `[A, C, S, S]` state re-forms as streams join
//! and retire, so a long-running request never blocks a short one behind
//! a full gang.
//!
//! # Admission policies and backpressure
//!
//! Admission order is decided by a sealed, deterministic [`Policy`] trait
//! — the scheduler core never special-cases a policy. The
//! [`AdmissionPolicy`] enum is the serializable selector over the six
//! built-in implementations: FIFO, shortest-budget-first, the
//! gang-scheduling baseline, tenant fair share, static [`ServeRequest`]
//! priority, and budget-aware preemption (which *parks* an in-flight
//! stream — state frozen bit-for-bit — and resumes it at a later
//! boundary). The pending queue can be bounded with a [`QueueBound`]
//! whose [`BackpressurePolicy`] either rejects the newcomer or sheds the
//! oldest / largest-budget queued request. Every run records per-request
//! queueing delay and latency, per-round batch occupancy, queue depth,
//! and wall-clock, plus shed/reject ids and preemption counts, into a
//! serializable [`ServeStats`].
//!
//! The determinism contract extends unchanged: admission timing only
//! decides *which* rounds a stream shares with whom, never the arithmetic
//! inside its own stripe, so any request's output is bitwise identical to
//! a solo [`crate::sample`] run regardless of who shares its batch.

use crate::cost::{CostEstimate, CostModel, CostModelConfig};
use crate::denoiser::Denoiser;
use crate::error::{EdmError, Result};
use crate::model::{ActEvent, RunConfig, UNet, UNetConfig};
use serde::{Deserialize, Serialize};
use sqdm_nn::PackCache;
use sqdm_quant::PrecisionAssignment;
use sqdm_sparsity::{channel_sparsity, ChangeMask, TemporalTrace};
use sqdm_tensor::{arena, Rng, Tensor};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// Identifies the tenant (customer, workload class) a request belongs to.
/// Tenancy is a pure scheduling attribute: it decides admission order under
/// [`AdmissionPolicy::FairShare`] and how [`ServeStats`] roll up, never the
/// arithmetic of any stream.
pub type TenantId = u32;

/// One queued generation request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeRequest {
    /// Caller-chosen identifier, echoed in the matching [`ServedOutput`].
    pub id: u64,
    /// Seed of the request's private noise stream. A request's result
    /// depends only on `(seed, steps)` — never on its batch neighbors.
    pub seed: u64,
    /// Sigma-grid points for this request (model evaluations ≈ 2·steps−1);
    /// must be at least 2 (the Karras grid needs two endpoints). Requests
    /// in one batch may use different budgets; streams simply retire early
    /// and the batch shrinks.
    pub steps: usize,
    /// The submitting tenant (0 when unspecified). Only admission order and
    /// stat rollups look at it.
    pub tenant: TenantId,
    /// Static priority (0 when unspecified, higher is more urgent). Only
    /// [`AdmissionPolicy::Priority`] looks at it; like tenancy it is a pure
    /// scheduling attribute and never touches stream arithmetic.
    pub priority: u32,
}

impl ServeRequest {
    /// A request with the given id and step budget, seeding the noise
    /// stream from the id. Refine with the builder methods:
    /// `ServeRequest::new(id, steps).tenant(t).priority(p).seed(s)`.
    pub fn new(id: u64, steps: usize) -> Self {
        ServeRequest {
            id,
            seed: id,
            steps,
            tenant: 0,
            priority: 0,
        }
    }

    /// This request tagged with a tenant.
    #[must_use]
    pub fn tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// This request with a static priority (higher is more urgent).
    #[must_use]
    pub fn priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    /// This request with an explicit noise seed (instead of seed = id).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A finished generation plus its per-stream temporal-sparsity record.
#[derive(Debug, Clone)]
pub struct ServedOutput {
    /// The request identifier.
    pub id: u64,
    /// The generated image, `[1, C, S, S]`.
    pub image: Tensor,
    /// The step budget the request ran with.
    pub steps: usize,
    /// Per-(block, stage) activation-sparsity traces recorded at each of
    /// this stream's denoising steps (first Heun evaluation per step).
    traces: BTreeMap<(usize, usize), TemporalTrace>,
}

impl ServedOutput {
    /// The temporal trace of one observed `(block, stage)` activation, or
    /// `None` when tracing was disabled or the block was not observed.
    pub fn trace(&self, block: usize, stage: usize) -> Option<&TemporalTrace> {
        self.traces.get(&(block, stage))
    }

    /// The `(block, stage)` keys with recorded traces, in order.
    pub fn traced_keys(&self) -> Vec<(usize, usize)> {
        self.traces.keys().copied().collect()
    }

    /// This stream's change mask for one observed activation at `step`: the
    /// channels whose sparsity moved more than `tol` since the stream's
    /// previous denoising step (step 0 is always fully dense).
    pub fn change_mask(
        &self,
        block: usize,
        stage: usize,
        step: usize,
        tol: f64,
    ) -> Option<ChangeMask> {
        self.trace(block, stage).map(|t| t.change_mask(step, tol))
    }
}

/// Builds the concatenated per-stream reduction-row mask for the batched
/// sparse-delta GEMM (`sqdm_tensor::ops::int::qgemm_delta_multi`): stream
/// `s`'s channel mask at `step` is expanded to `rows_per_channel`
/// consecutive reduction rows (`kh · kw` for a convolution lowered by
/// im2col) and streams are laid out back to back — `mask[s · k + r]`.
///
/// Returns `None` if any stream lacks a trace for `(block, stage)` or has
/// not reached `step`.
pub fn delta_row_masks(
    outputs: &[ServedOutput],
    block: usize,
    stage: usize,
    step: usize,
    tol: f64,
    rows_per_channel: usize,
) -> Option<Vec<bool>> {
    let mut mask = Vec::new();
    for out in outputs {
        let trace = out.trace(block, stage)?;
        if step >= trace.steps() {
            return None;
        }
        mask.extend(trace.change_mask(step, tol).expand_rows(rows_per_channel));
    }
    Some(mask)
}

/// Packs concurrent denoising requests into batched Heun steps.
#[derive(Debug, Clone, Copy)]
pub struct BatchSampler {
    /// The preconditioned denoiser driving every stream.
    pub den: Denoiser,
    /// Record per-stream [`TemporalTrace`]s during serving (adds one
    /// observer pass per step; disable for pure-throughput serving).
    pub record_traces: bool,
}

/// One in-flight request stream.
pub(crate) struct Stream {
    pub(crate) request: ServeRequest,
    /// This stream's sigma grid, `steps + 1` points ending at 0.
    grid: Vec<f32>,
    /// Next step index; the stream retires at `cursor == request.steps`.
    pub(crate) cursor: usize,
    /// Current state, `[1, C, S, S]`.
    x: Tensor,
    traces: BTreeMap<(usize, usize), TemporalTrace>,
}

impl Stream {
    /// Consumes a retired stream into its served output.
    pub(crate) fn into_output(self) -> ServedOutput {
        ServedOutput {
            id: self.request.id,
            image: self.x,
            steps: self.request.steps,
            traces: self.traces,
        }
    }
}

impl BatchSampler {
    /// Creates a batch sampler with per-stream trace recording enabled.
    pub fn new(den: Denoiser) -> Self {
        BatchSampler {
            den,
            record_traces: true,
        }
    }

    /// This sampler with trace recording switched on or off.
    pub fn with_traces(mut self, record: bool) -> Self {
        self.record_traces = record;
        self
    }

    /// Serves a batch of requests to completion and returns one output per
    /// request, in request order.
    ///
    /// Each sampler round advances every in-flight stream by one Heun step
    /// with **one** batched denoiser evaluation (plus one batched
    /// correction evaluation for the streams not on their final step).
    /// Streams that exhaust their step budget retire and the packed batch
    /// shrinks. See the module docs for the determinism contract.
    ///
    /// # Errors
    ///
    /// Returns [`EdmError::Config`] for a zero-step request and propagates
    /// model errors.
    pub fn run(
        &self,
        net: &mut UNet,
        requests: &[ServeRequest],
        assignment: Option<&PrecisionAssignment>,
    ) -> Result<Vec<ServedOutput>> {
        let packs = PackCache::new();
        self.run_with_packs(net, requests, assignment, &packs)
    }

    /// [`BatchSampler::run`] against a caller-owned [`PackCache`]: every
    /// layer's quantization artifact is fetched from (or built once into)
    /// `packs`, so a resident model serving many batches over its lifetime
    /// never rebuilds a weight pack. Bitwise identical to
    /// [`BatchSampler::run`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`BatchSampler::run`].
    pub fn run_with_packs(
        &self,
        net: &mut UNet,
        requests: &[ServeRequest],
        assignment: Option<&PrecisionAssignment>,
        packs: &PackCache,
    ) -> Result<Vec<ServedOutput>> {
        validate_unique_ids(requests.iter().map(|r| r.id))?;
        let mcfg = *net.config();
        // The arena scope turns every transient buffer the rounds take —
        // activation tensors, im2col scratch, packed states — into pool
        // hits after the first round: the steady state allocates nothing.
        arena::scope(|| {
            let mut streams = requests
                .iter()
                .map(|req| self.make_stream(&mcfg, req))
                .collect::<Result<Vec<_>>>()?;

            loop {
                let mut active = arena::take::<usize>(streams.len());
                active.extend(
                    (0..streams.len()).filter(|&i| streams[i].cursor < streams[i].request.steps),
                );
                if active.is_empty() {
                    arena::recycle(active);
                    break;
                }
                self.round(net, &mut streams, &active, assignment, packs)?;
                arena::recycle(active);
            }

            Ok(streams.into_iter().map(Stream::into_output).collect())
        })
    }

    /// Initializes one stream: validates the step budget and draws the
    /// request's private initial noise. The state depends only on
    /// `(seed, steps)`, never on *when* the stream is admitted, which is
    /// what lets the [`Scheduler`] create streams lazily at admission
    /// without perturbing results.
    pub(crate) fn make_stream(&self, mcfg: &UNetConfig, req: &ServeRequest) -> Result<Stream> {
        // The Karras grid needs at least two sigma points.
        if req.steps < 2 {
            return Err(EdmError::Config {
                reason: format!(
                    "request {} has step budget {}; at least 2 required",
                    req.id, req.steps
                ),
            });
        }
        let s = mcfg.image_size;
        let grid = self.den.schedule.sigma_steps(req.steps);
        let mut rng = Rng::seed_from(req.seed);
        let x = Tensor::randn([1, mcfg.in_channels, s, s], &mut rng).scale(grid[0]);
        Ok(Stream {
            request: *req,
            grid,
            cursor: 0,
            x,
            traces: BTreeMap::new(),
        })
    }

    /// Advances the `active` streams by one Heun step with one batched
    /// denoiser evaluation (plus one batched correction evaluation for the
    /// streams not on their final step). The batch composition may differ
    /// on every call — streams join and retire between rounds — and each
    /// stream's arithmetic is independent of its neighbors, so any
    /// composition produces the solo-`sample()` bits.
    pub(crate) fn round(
        &self,
        net: &mut UNet,
        streams: &mut [Stream],
        active: &[usize],
        assignment: Option<&PrecisionAssignment>,
        packs: &PackCache,
    ) -> Result<()> {
        let dims = streams[active[0]].x.dims();
        let (c, s) = (dims[1], dims[2]);
        let chw = c * s * s;
        let a = active.len();
        // Pack the in-flight states into one [A, C, S, S] batch; every
        // stream contributes its own sigma, so streams at different
        // noise steps share the forward.
        let packed = pack_states(streams, active, chw)?;
        let mut sigmas = arena::take::<f32>(a);
        sigmas.extend(active.iter().map(|&i| streams[i].grid[streams[i].cursor]));
        let d0 = {
            let record = self.record_traces;
            let mut obs = |ev: ActEvent<'_>| {
                record_event(streams, active, &ev);
            };
            let mut rc = RunConfig {
                train: false,
                assignment,
                observer: if record { Some(&mut obs) } else { None },
                batched: true,
                packs: Some(packs),
                delta: None,
            };
            self.den.denoise(net, &packed, &sigmas, &mut rc)?
        };
        arena::recycle(sigmas);
        // First-order (Euler) update per stream, exactly the arithmetic of
        // `crate::sample` on this stream's state. Midpoints and slopes land
        // in pooled flat buffers (slot-major) instead of per-stream
        // tensors, so the round's spine stays allocation-free; the values
        // pass through unchanged, which preserves the bitwise contract.
        let mut nexts = arena::take_zeroed::<f32>(a * chw);
        let mut slopes = arena::take_zeroed::<f32>(a * chw);
        for (slot, &i) in active.iter().enumerate() {
            let st = &streams[i];
            let (sig, sig_next) = (st.grid[st.cursor], st.grid[st.cursor + 1]);
            let d0_i = d0.batch_sample(slot)?;
            let slope = st.x.sub(&d0_i)?.scale(1.0 / sig);
            let mut x_next = st.x.clone();
            x_next.add_scaled(&slope, sig_next - sig)?;
            nexts[slot * chw..(slot + 1) * chw].copy_from_slice(x_next.as_slice());
            slopes[slot * chw..(slot + 1) * chw].copy_from_slice(slope.as_slice());
        }
        // Heun correction, batched over the streams whose next sigma is
        // nonzero (a stream's final step is first-order, as in
        // `crate::sample`).
        let mut corr = arena::take::<usize>(a);
        corr.extend((0..a).filter(|&slot| {
            let st = &streams[active[slot]];
            st.grid[st.cursor + 1] > 0.0
        }));
        if !corr.is_empty() {
            let mut packed_next = arena::take::<f32>(corr.len() * chw);
            let mut sig_nexts = arena::take::<f32>(corr.len());
            for &slot in corr.iter() {
                packed_next.extend_from_slice(&nexts[slot * chw..(slot + 1) * chw]);
                let st = &streams[active[slot]];
                sig_nexts.push(st.grid[st.cursor + 1]);
            }
            let packed_next = Tensor::from_vec(packed_next, [corr.len(), c, s, s])?;
            let d1 = {
                let mut rc = RunConfig {
                    train: false,
                    assignment,
                    observer: None,
                    batched: true,
                    packs: Some(packs),
                    delta: None,
                };
                self.den.denoise(net, &packed_next, &sig_nexts, &mut rc)?
            };
            arena::recycle(sig_nexts);
            for (cslot, &slot) in corr.iter().enumerate() {
                let st = &streams[active[slot]];
                let (sig, sig_next) = (st.grid[st.cursor], st.grid[st.cursor + 1]);
                let d1_i = d1.batch_sample(cslot)?;
                let x_next = tensor_from(&nexts[slot * chw..(slot + 1) * chw], [1, c, s, s])?;
                let slope = tensor_from(&slopes[slot * chw..(slot + 1) * chw], [1, c, s, s])?;
                let slope2 = x_next.sub(&d1_i)?.scale(1.0 / sig_next);
                let mut avg = slope;
                avg.add_scaled(&slope2, 1.0)?;
                let mut corrected = st.x.clone();
                corrected.add_scaled(&avg, 0.5 * (sig_next - sig))?;
                nexts[slot * chw..(slot + 1) * chw].copy_from_slice(corrected.as_slice());
            }
        }
        arena::recycle(corr);
        for (slot, &i) in active.iter().enumerate() {
            streams[i]
                .x
                .as_mut_slice()
                .copy_from_slice(&nexts[slot * chw..(slot + 1) * chw]);
            streams[i].cursor += 1;
        }
        arena::recycle(nexts);
        arena::recycle(slopes);
        Ok(())
    }
}

/// A `[1, C, S, S]` tensor holding a copy of `data`, drawn from the pool.
fn tensor_from(data: &[f32], dims: [usize; 4]) -> Result<Tensor> {
    let mut buf = arena::take::<f32>(data.len());
    buf.extend_from_slice(data);
    Ok(Tensor::from_vec(buf, dims)?)
}

/// Rejects duplicate request ids up front: a duplicate would make
/// [`ServedOutput`] lookup by id ambiguous, so serving refuses the batch
/// at entry instead of silently returning two outputs under one id.
pub(crate) fn validate_unique_ids(ids: impl Iterator<Item = u64>) -> Result<()> {
    let mut seen = BTreeSet::new();
    for id in ids {
        if !seen.insert(id) {
            return Err(EdmError::Config {
                reason: format!("duplicate request id {id}"),
            });
        }
    }
    Ok(())
}

/// A [`ServeRequest`] annotated with its arrival time on the scheduler's
/// virtual clock (one tick per outer denoise round).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledRequest {
    /// The generation request itself.
    pub request: ServeRequest,
    /// Virtual step at which the request becomes visible to the scheduler.
    /// Requests arriving mid-round wait for the next step boundary, which
    /// is exactly when continuous batching re-packs the in-flight batch.
    pub arrival_step: usize,
}

impl ScheduledRequest {
    /// Wraps a request with an arrival step.
    pub fn new(request: ServeRequest, arrival_step: usize) -> Self {
        ScheduledRequest {
            request,
            arrival_step,
        }
    }

    /// A request with the given id and step budget (seed = id, as in
    /// [`ServeRequest::new`]) arriving at `arrival_step`.
    pub fn at(id: u64, steps: usize, arrival_step: usize) -> Self {
        ScheduledRequest::new(ServeRequest::new(id, steps), arrival_step)
    }
}

/// One admissible unit of work at a step boundary: either a queued request
/// that has arrived, or a parked stream eligible to resume. Candidates are
/// presented to [`Policy::admit`] pre-sorted in canonical arrival order
/// `(arrival_step, submit_index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The request id.
    pub id: u64,
    /// The submitting tenant.
    pub tenant: TenantId,
    /// Static priority carried on the request (higher is more urgent).
    pub priority: u32,
    /// Virtual step at which the request arrived.
    pub arrival_step: usize,
    /// Submission index: a total order over every request of one run.
    pub submit_index: usize,
    /// Denoise steps still owed: the full budget for a fresh request, the
    /// frozen remainder for a parked stream.
    pub remaining: usize,
    /// True when this candidate is a parked stream resuming (its state is
    /// already allocated; admitting it creates no new stream).
    pub parked: bool,
}

/// A stream currently in flight, as [`Policy::admit`] sees it. Positions
/// in the [`AdmitCtx::inflight`] slice are the handles park decisions use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InflightInfo {
    /// The request id.
    pub id: u64,
    /// The submitting tenant.
    pub tenant: TenantId,
    /// Static priority carried on the request.
    pub priority: u32,
    /// Denoise steps still owed before the stream retires.
    pub remaining: usize,
}

/// Everything a [`Policy`] may observe at one step boundary. Deliberately
/// *no* wall-clock access: admission must be a pure function of the
/// virtual schedule state (plus the policy's own deterministic state) so
/// every run stays bitwise reproducible at any thread count.
#[derive(Debug)]
pub struct AdmitCtx<'a> {
    /// Admissible candidates, in canonical `(arrival_step, submit_index)`
    /// order.
    pub candidates: &'a [Candidate],
    /// The in-flight batch, oldest stream first.
    pub inflight: &'a [InflightInfo],
    /// Free in-flight slots before any parking:
    /// `max_batch - inflight.len()`.
    pub capacity: usize,
    /// The in-flight batch capacity.
    pub max_batch: usize,
    /// The virtual clock (outer denoise rounds since the run began).
    pub clock: usize,
    /// Requests known to arrive strictly after `clock` — lets a gang-style
    /// policy decide whether waiting could ever assemble a fuller batch.
    pub pending_future: usize,
    /// Per-candidate cost estimates, parallel to
    /// [`AdmitCtx::candidates`], supplied by the engine's
    /// [`crate::cost::CostModel`]. All-zero under the default
    /// [`crate::cost::NoopCostModel`]; pre-existing policies ignore this
    /// slice entirely, which is what keeps their decisions bitwise
    /// unchanged by the cost layer.
    pub costs: &'a [CostEstimate],
    /// Per-stream cost estimates, parallel to [`AdmitCtx::inflight`].
    pub inflight_costs: &'a [CostEstimate],
}

mod sealed {
    /// Seals [`super::Policy`]: admission decisions feed the bitwise
    /// determinism contract, so the set of implementations is closed to
    /// this crate.
    pub trait Sealed {}
}

/// What a [`Policy`] decided at one step boundary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdmitDecision {
    /// Indices into [`AdmitCtx::candidates`] to admit, in admission order.
    pub admit: Vec<usize>,
    /// Positions into [`AdmitCtx::inflight`] to park. A parked stream
    /// keeps its state bit-for-bit and re-enters the candidate set at the
    /// next boundary with its remaining budget frozen.
    pub park: Vec<usize>,
}

/// A deterministic admission policy (sealed).
///
/// [`Policy::admit`] runs at every step boundary. It must be a pure
/// function of the [`AdmitCtx`] and the policy's own state — no wall
/// clock, no ambient randomness — which is what keeps serving bitwise
/// reproducible under any `SQDM_THREADS`. Obtain implementations via
/// [`AdmissionPolicy::into_policy`]; the scheduler core dispatches through
/// this trait alone, so new policies never edit the serve loop.
pub trait Policy: sealed::Sealed + std::fmt::Debug + Send {
    /// Chooses which candidates join (and which in-flight streams leave)
    /// the batch at this boundary.
    fn admit(&mut self, ctx: &AdmitCtx<'_>) -> AdmitDecision;
}

/// First come, first served (see [`AdmissionPolicy::Fifo`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoPolicy;

impl sealed::Sealed for FifoPolicy {}
impl Policy for FifoPolicy {
    fn admit(&mut self, ctx: &AdmitCtx<'_>) -> AdmitDecision {
        AdmitDecision {
            admit: (0..ctx.candidates.len().min(ctx.capacity)).collect(),
            park: Vec::new(),
        }
    }
}

/// Shortest budget first (see [`AdmissionPolicy::ShortestBudgetFirst`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShortestBudgetFirstPolicy;

impl sealed::Sealed for ShortestBudgetFirstPolicy {}
impl Policy for ShortestBudgetFirstPolicy {
    fn admit(&mut self, ctx: &AdmitCtx<'_>) -> AdmitDecision {
        let mut order: Vec<usize> = (0..ctx.candidates.len()).collect();
        order.sort_by_key(|&i| {
            let c = &ctx.candidates[i];
            (c.remaining, c.arrival_step, c.submit_index)
        });
        order.truncate(ctx.capacity);
        AdmitDecision {
            admit: order,
            park: Vec::new(),
        }
    }
}

/// Gang scheduling, the static-batching baseline (see
/// [`AdmissionPolicy::Gang`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct GangPolicy;

impl sealed::Sealed for GangPolicy {}
impl Policy for GangPolicy {
    fn admit(&mut self, ctx: &AdmitCtx<'_>) -> AdmitDecision {
        let drained = ctx.inflight.is_empty();
        let ready = ctx.candidates.len() >= ctx.max_batch
            || (ctx.pending_future == 0 && !ctx.candidates.is_empty());
        if drained && ready {
            AdmitDecision {
                admit: (0..ctx.candidates.len().min(ctx.max_batch)).collect(),
                park: Vec::new(),
            }
        } else {
            AdmitDecision::default()
        }
    }
}

/// Deterministic round-robin fair share across tenants (see
/// [`AdmissionPolicy::FairShare`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct FairSharePolicy {
    /// The tenant id after the last one served, so the next boundary
    /// resumes the cycle instead of restarting at the smallest tenant.
    resume: TenantId,
}

impl sealed::Sealed for FairSharePolicy {}
impl Policy for FairSharePolicy {
    fn admit(&mut self, ctx: &AdmitCtx<'_>) -> AdmitDecision {
        let cands = ctx.candidates;
        if cands.is_empty() || ctx.capacity == 0 {
            return AdmitDecision::default();
        }
        // Tenant-major, FIFO within tenant.
        let mut order: Vec<usize> = (0..cands.len()).collect();
        order.sort_by_key(|&i| {
            (
                cands[i].tenant,
                cands[i].arrival_step,
                cands[i].submit_index,
            )
        });
        // Per-tenant queues over the sorted order: (tenant, start, len,
        // taken).
        let mut queues: Vec<(TenantId, usize, usize, usize)> = Vec::new();
        for (pos, &i) in order.iter().enumerate() {
            let t = cands[i].tenant;
            match queues.last_mut() {
                Some(q) if q.0 == t => q.2 += 1,
                _ => queues.push((t, pos, 1, 0)),
            }
        }
        // Start the cycle at the first tenant at or after the resume
        // point, wrapping.
        let start = queues
            .iter()
            .position(|q| q.0 >= self.resume)
            .unwrap_or(0usize);
        let mut admit = Vec::with_capacity(ctx.capacity.min(cands.len()));
        let mut qi = start;
        let mut exhausted = 0usize;
        let nq = queues.len();
        while admit.len() < ctx.capacity && exhausted < nq {
            let q = &mut queues[qi % nq];
            if q.3 < q.2 {
                admit.push(order[q.1 + q.3]);
                q.3 += 1;
                self.resume = q.0.wrapping_add(1);
                exhausted = 0;
            } else {
                exhausted += 1;
            }
            qi += 1;
        }
        AdmitDecision {
            admit,
            park: Vec::new(),
        }
    }
}

/// Queued steps after which the [`PriorityPolicy`] boosts a waiting
/// candidate's effective priority by one class. Bounds priority-inversion
/// starvation: a low-priority request flooded by an endless stream of
/// high-priority work gains one class per `PRIORITY_AGE_STEPS` spent
/// queued, so it eventually outranks fresh arrivals of any static class.
pub const PRIORITY_AGE_STEPS: usize = 8;

/// Static priority admission with aging (see
/// [`AdmissionPolicy::Priority`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct PriorityPolicy;

impl sealed::Sealed for PriorityPolicy {}
impl Policy for PriorityPolicy {
    fn admit(&mut self, ctx: &AdmitCtx<'_>) -> AdmitDecision {
        let mut order: Vec<usize> = (0..ctx.candidates.len()).collect();
        order.sort_by_key(|&i| {
            let c = &ctx.candidates[i];
            // Effective priority = static class + one boost per
            // PRIORITY_AGE_STEPS queued. Pure function of the virtual
            // clock, so decisions stay deterministic.
            let age = ctx.clock.saturating_sub(c.arrival_step);
            let effective = u64::from(c.priority) + (age / PRIORITY_AGE_STEPS) as u64;
            (Reverse(effective), c.arrival_step, c.submit_index)
        });
        order.truncate(ctx.capacity);
        AdmitDecision {
            admit: order,
            park: Vec::new(),
        }
    }
}

/// Budget-aware preemption (see [`AdmissionPolicy::Preempt`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct PreemptPolicy;

impl sealed::Sealed for PreemptPolicy {}
impl Policy for PreemptPolicy {
    fn admit(&mut self, ctx: &AdmitCtx<'_>) -> AdmitDecision {
        // Shortest remaining budget first over fresh and parked work alike.
        let mut order: Vec<usize> = (0..ctx.candidates.len()).collect();
        order.sort_by_key(|&i| {
            let c = &ctx.candidates[i];
            (c.remaining, c.arrival_step, c.submit_index)
        });
        let mut decision = AdmitDecision::default();
        let mut next = 0usize;
        while next < order.len() && decision.admit.len() < ctx.capacity {
            decision.admit.push(order[next]);
            next += 1;
        }
        // Free slots exhausted: park in-flight streams with strictly more
        // remaining work than the best waiting candidate, longest first.
        // Strict inequality is what prevents ping-pong — a parked stream's
        // remainder is frozen while running streams only shrink, so any
        // pair can swap at most once.
        let mut victims: Vec<usize> = (0..ctx.inflight.len()).collect();
        victims.sort_by_key(|&p| Reverse((ctx.inflight[p].remaining, p)));
        let mut vi = 0usize;
        while next < order.len() && vi < victims.len() {
            let cand = &ctx.candidates[order[next]];
            if ctx.inflight[victims[vi]].remaining > cand.remaining {
                decision.park.push(victims[vi]);
                decision.admit.push(order[next]);
                next += 1;
                vi += 1;
            } else {
                break;
            }
        }
        decision
    }
}

/// Energy-budgeted admission (see [`AdmissionPolicy::EnergyCapped`]).
///
/// Tracks simulated energy *committed* per window of the virtual clock:
/// admitting a candidate charges its whole remaining trajectory
/// (`per-round estimate × remaining steps`) against the window's budget,
/// and admission stops once the budget is exhausted — deferred candidates
/// simply stay queued until a fresh window opens. Never parks, so the
/// policy is safe on every serving surface including the daemon (whose
/// stream storage cannot survive parking).
#[derive(Debug, Clone, Copy)]
pub struct EnergyCappedPolicy {
    budget_pj: u64,
    window: u32,
    /// Window index (`clock / window`) the running total belongs to.
    window_id: usize,
    /// Simulated energy committed in the current window, pJ.
    committed_pj: f64,
}

impl EnergyCappedPolicy {
    fn new(budget_pj: u64, window: u32) -> Self {
        EnergyCappedPolicy {
            budget_pj,
            window: window.max(1),
            window_id: 0,
            committed_pj: 0.0,
        }
    }
}

impl sealed::Sealed for EnergyCappedPolicy {}
impl Policy for EnergyCappedPolicy {
    fn admit(&mut self, ctx: &AdmitCtx<'_>) -> AdmitDecision {
        let wid = ctx.clock / self.window as usize;
        if wid != self.window_id {
            self.window_id = wid;
            self.committed_pj = 0.0;
        }
        let budget = self.budget_pj as f64;
        let mut admit = Vec::new();
        for i in 0..ctx.candidates.len().min(ctx.capacity) {
            let c = &ctx.candidates[i];
            let cost = ctx
                .costs
                .get(i)
                .map_or(0.0, |e| e.round_energy_pj * c.remaining as f64);
            let within = self.committed_pj + cost <= budget;
            // The stall guard: with nothing in flight the first candidate
            // is admitted even over budget — otherwise a budget smaller
            // than one trajectory would wedge the queue forever.
            if within || (ctx.inflight.is_empty() && admit.is_empty()) {
                self.committed_pj += cost;
                admit.push(i);
            } else {
                break;
            }
        }
        AdmitDecision {
            admit,
            park: Vec::new(),
        }
    }
}

/// Occupancy-band admission (see [`AdmissionPolicy::OccupancyTarget`]).
///
/// Packs the batch toward a target PE-utilisation band `[lo, hi]` (as
/// fractions of the provisioned array, from the configured percentages):
/// candidates are admitted FIFO while the projected occupancy — in-flight
/// shares plus admitted shares — stays at or below `hi`, and in-flight
/// streams are parked (newest first, always keeping one) while their
/// occupancy alone exceeds `hi`. With zero-cost estimates (the no-op
/// model) projections are always zero and the policy degrades to FIFO.
/// Parks streams, so it is scheduler-only — the daemon must not use it.
#[derive(Debug, Clone, Copy)]
pub struct OccupancyTargetPolicy {
    lo: f64,
    hi: f64,
}

impl OccupancyTargetPolicy {
    fn new(lo_pct: u8, hi_pct: u8) -> Self {
        let lo = f64::from(lo_pct.min(100)) / 100.0;
        let hi = (f64::from(hi_pct.min(100)) / 100.0).max(lo);
        OccupancyTargetPolicy { lo, hi }
    }
}

impl sealed::Sealed for OccupancyTargetPolicy {}
impl Policy for OccupancyTargetPolicy {
    fn admit(&mut self, ctx: &AdmitCtx<'_>) -> AdmitDecision {
        let mut occupied: f64 = ctx
            .inflight_costs
            .iter()
            .map(|e| e.occupancy_share)
            .sum();
        let mut decision = AdmitDecision::default();
        // Over the band on in-flight work alone: shed load by parking the
        // newest streams until back inside, always keeping one running.
        let mut parked_share = 0.0;
        if occupied > self.hi {
            for p in (1..ctx.inflight.len()).rev() {
                if occupied - parked_share <= self.hi {
                    break;
                }
                parked_share += ctx.inflight_costs.get(p).map_or(0.0, |e| e.occupancy_share);
                decision.park.push(p);
            }
        }
        occupied -= parked_share;
        for i in 0..ctx.candidates.len().min(ctx.capacity + decision.park.len()) {
            let share = ctx.costs.get(i).map_or(0.0, |e| e.occupancy_share);
            let fits = occupied + share <= self.hi || occupied < self.lo;
            if fits || (ctx.inflight.len() == decision.park.len() && decision.admit.is_empty()) {
                occupied += share;
                decision.admit.push(i);
            } else {
                break;
            }
        }
        // Parking only to shrink the batch with nothing to admit is pure
        // churn at this boundary — but unlike the engine's own sanitizer
        // we keep it, because the engine clears parks when nothing is
        // admitted anyway.
        decision
    }
}

/// Order in which queued requests are admitted at a step boundary.
///
/// This enum is the serializable, copyable *selector*; the scheduler core
/// dispatches through the sealed [`Policy`] trait that
/// [`AdmissionPolicy::into_policy`] constructs, so the enum is purely a
/// convenience shim for configuration surfaces (wire, benches, tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// First come, first served: arrived requests are admitted in
    /// `(arrival_step, submission order)` order whenever the in-flight
    /// batch has capacity. The continuous-batching default.
    Fifo,
    /// Shortest budget first: among the arrived requests, the smallest
    /// step budget is admitted first (ties broken FIFO). Trades worst-case
    /// fairness for lower mean latency under mixed budgets.
    ShortestBudgetFirst,
    /// Gang scheduling, the static-batching baseline: nothing is admitted
    /// until the in-flight batch has fully drained **and** `max_batch`
    /// requests have arrived (or no further arrivals are pending, which
    /// flushes a partial final gang). Exists so benches and tests can
    /// measure what continuous admission buys; real serving wants
    /// [`AdmissionPolicy::Fifo`] or
    /// [`AdmissionPolicy::ShortestBudgetFirst`].
    Gang,
    /// Deterministic round-robin fair share across tenants: at each step
    /// boundary the arrived requests are grouped by [`TenantId`] (FIFO
    /// within a tenant) and admission cycles through the tenants in
    /// ascending id order, one request per tenant per turn, resuming after
    /// the last tenant served at the previous boundary. A tenant flooding
    /// the queue therefore gets at most its per-cycle share while sparse
    /// tenants are never starved. Fully deterministic: admission order is a
    /// function of the request set alone.
    FairShare,
    /// Static priority: the highest [`ServeRequest::priority`] among the
    /// arrived requests is admitted first (ties broken FIFO). Priorities
    /// are pure scheduling metadata — arithmetic never sees them.
    Priority,
    /// Budget-aware preemption (shortest remaining processing time): the
    /// smallest remaining budget — fresh or parked — is admitted first,
    /// and when the batch is full an in-flight stream with strictly more
    /// remaining work is **parked** to make room. A parked stream keeps
    /// its state bit-for-bit (its remaining budget frozen) and resumes at
    /// a later boundary producing exactly the solo-`sample()` bits, so
    /// preemption is invisible to the determinism contract.
    Preempt,
    /// Energy-budgeted admission: each window of `window` virtual steps
    /// may *commit* at most `budget_pj` picojoules of simulated energy
    /// (per-round estimate × remaining steps, from the engine's
    /// [`crate::cost::CostModel`]). Once the window's budget is spent,
    /// further candidates stay queued until the next window. Never parks
    /// and always admits at least one candidate when nothing is in
    /// flight, so it is deadlock-free and daemon-safe. With the no-op
    /// cost model every estimate is zero and this degrades to
    /// [`AdmissionPolicy::Fifo`].
    EnergyCapped {
        /// Simulated energy budget per window, pJ.
        budget_pj: u64,
        /// Window length in virtual steps (0 is treated as 1).
        window: u32,
    },
    /// Occupancy-band admission: packs the batch toward a PE-utilisation
    /// band `[lo_pct, hi_pct]`% of the provisioned array, admitting while
    /// the projected occupancy stays inside the band and parking the
    /// newest in-flight streams while it overshoots. Parks streams, so
    /// scheduler-only — the daemon's stream storage cannot survive
    /// parking. With the no-op cost model projections are all zero and
    /// this degrades to [`AdmissionPolicy::Fifo`].
    OccupancyTarget {
        /// Lower edge of the target band, percent (clamped to 100).
        lo_pct: u8,
        /// Upper edge of the target band, percent (clamped to 100, raised
        /// to `lo_pct` if below it).
        hi_pct: u8,
    },
}

impl AdmissionPolicy {
    /// The boxed [`Policy`] implementation for this selector — how the
    /// [`Scheduler`], the registry scheduler, and the daemon build their
    /// per-run policy state.
    pub fn into_policy(self) -> Box<dyn Policy> {
        match self {
            AdmissionPolicy::Fifo => Box::new(FifoPolicy),
            AdmissionPolicy::ShortestBudgetFirst => Box::new(ShortestBudgetFirstPolicy),
            AdmissionPolicy::Gang => Box::new(GangPolicy),
            AdmissionPolicy::FairShare => Box::new(FairSharePolicy::default()),
            AdmissionPolicy::Priority => Box::new(PriorityPolicy),
            AdmissionPolicy::Preempt => Box::new(PreemptPolicy),
            AdmissionPolicy::EnergyCapped { budget_pj, window } => {
                Box::new(EnergyCappedPolicy::new(budget_pj, window))
            }
            AdmissionPolicy::OccupancyTarget { lo_pct, hi_pct } => {
                Box::new(OccupancyTargetPolicy::new(lo_pct, hi_pct))
            }
        }
    }
}

/// What happens to the overflow when a request lands on a full pending
/// queue (see [`QueueBound`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackpressurePolicy {
    /// Refuse the newcomer: the scheduler records its id in
    /// [`ServeStats::rejected_ids`] and serves no output for it; the
    /// daemon surfaces this as [`EdmError::Overloaded`] (HTTP 429).
    Reject,
    /// Shed the oldest queued request — smallest
    /// `(arrival_step, submission index)` — and queue the newcomer.
    ShedOldest,
    /// Shed the largest step budget among the queue and the newcomer (ties
    /// shed the newest arrival, so the earliest submission of a tied
    /// budget survives). The newcomer itself is shed when it carries the
    /// largest budget.
    ShedLargestBudget,
}

/// A bound on the scheduler's pending queue: at most `capacity` requests
/// may wait for admission; `policy` decides what happens to the overflow.
/// Arrivals are bounded *before* the boundary's admission runs, so a full
/// queue sheds or rejects a newcomer even if admission would free a slot
/// at the same tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueBound {
    /// Maximum number of queued (arrived but not yet admitted) requests.
    pub capacity: usize,
    /// What to do with the overflow.
    pub policy: BackpressurePolicy,
}

/// Outcome of offering one arrival to the [`AdmissionEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Backpressure {
    /// Queued (or no bound configured).
    Accepted,
    /// The newcomer was refused; carries its id.
    Rejected(u64),
    /// A request (possibly the newcomer itself) was shed to make room;
    /// carries the victim's id.
    Shed {
        /// The shed request's id.
        id: u64,
    },
}

/// An in-flight stream as the [`AdmissionEngine`] needs to see it at a
/// step boundary.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InflightRef {
    /// The caller's handle for the stream (index into its stream storage).
    pub(crate) stream_key: usize,
    pub(crate) scheduled: ScheduledRequest,
    pub(crate) submit_index: usize,
    /// Denoise steps still owed (`steps - cursor`).
    pub(crate) remaining: usize,
}

/// A preempted stream waiting to resume: its state stays allocated in the
/// caller's storage, the engine only remembers the handle and the frozen
/// remainder.
#[derive(Debug, Clone, Copy)]
struct ParkedEntry {
    stream_key: usize,
    scheduled: ScheduledRequest,
    submit_index: usize,
    remaining: usize,
}

/// One admission decided by [`AdmissionEngine::boundary`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum Admitted {
    /// A fresh request: the caller creates its stream now.
    Fresh {
        scheduled: ScheduledRequest,
        submit_index: usize,
    },
    /// A parked stream resumes bit-for-bit where it left off.
    Resumed {
        stream_key: usize,
        submit_index: usize,
    },
}

/// What one step boundary decided.
#[derive(Debug, Default)]
pub(crate) struct BoundaryActions {
    /// Stream keys to remove from the in-flight set (state kept; the
    /// engine re-offers them as parked candidates at later boundaries).
    pub(crate) park: Vec<usize>,
    /// Admissions, in admission order.
    pub(crate) admit: Vec<Admitted>,
}

/// The one shared admission path: a bounded pending queue (backpressure on
/// arrival) feeding a [`Policy`] (admission and preemption at step
/// boundaries). [`Scheduler`], the registry scheduler, and the daemon all
/// drive this engine instead of duplicating admission logic.
#[derive(Debug)]
pub(crate) struct AdmissionEngine {
    policy: Box<dyn Policy>,
    bound: Option<QueueBound>,
    /// The cost model supplying per-candidate estimates at boundaries and
    /// accounting executed rounds ([`NoopCostModel`](crate::cost) unless
    /// configured otherwise).
    cost: Box<dyn CostModel>,
    /// Arrived, not yet admitted: `(request, submission index)`.
    queue: Vec<(ScheduledRequest, usize)>,
    parked: Vec<ParkedEntry>,
}

impl AdmissionEngine {
    /// An engine whose boundaries see estimates from `cost`, built for a
    /// deployment provisioned with `provisioned` batch slots. Passing
    /// [`CostModelConfig::Noop`] yields a cost-blind engine whose policies
    /// behave exactly as they did before costs existed.
    pub(crate) fn with_cost(
        policy: AdmissionPolicy,
        bound: Option<QueueBound>,
        cost: CostModelConfig,
        provisioned: usize,
    ) -> Self {
        AdmissionEngine {
            policy: policy.into_policy(),
            bound,
            cost: cost.into_cost_model(provisioned),
            queue: Vec::new(),
            parked: Vec::new(),
        }
    }

    /// Accounts one executed round over `batch` streams through the cost
    /// model; returns the round's simulated `(energy_pj, occupancy)`.
    pub(crate) fn round_accounting(&mut self, batch: usize) -> (f64, f64) {
        self.cost.round_accounting(batch)
    }

    /// Requests currently waiting for admission.
    pub(crate) fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// True while any queued or parked work remains.
    pub(crate) fn has_work(&self) -> bool {
        !self.queue.is_empty() || !self.parked.is_empty()
    }

    /// Offers one arrival to the bounded queue.
    pub(crate) fn enqueue(
        &mut self,
        scheduled: ScheduledRequest,
        submit_index: usize,
    ) -> Backpressure {
        let Some(bound) = self.bound else {
            self.queue.push((scheduled, submit_index));
            return Backpressure::Accepted;
        };
        if self.queue.len() < bound.capacity {
            self.queue.push((scheduled, submit_index));
            return Backpressure::Accepted;
        }
        match bound.policy {
            BackpressurePolicy::Reject => Backpressure::Rejected(scheduled.request.id),
            BackpressurePolicy::ShedOldest => {
                // A zero-capacity queue can only shed the newcomer itself.
                if bound.capacity == 0 {
                    return Backpressure::Shed {
                        id: scheduled.request.id,
                    };
                }
                let victim = self
                    .queue
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (s, idx))| (s.arrival_step, *idx))
                    .map(|(pos, _)| pos)
                    .expect("bounded nonzero queue is full, hence nonempty");
                let (shed, _) = self.queue.remove(victim);
                self.queue.push((scheduled, submit_index));
                Backpressure::Shed {
                    id: shed.request.id,
                }
            }
            BackpressurePolicy::ShedLargestBudget => {
                // Largest `(steps, arrival_step, submission index)` loses:
                // the biggest budget is shed, ties shed the newest.
                let mut victim_pos = None; // `None` means the newcomer.
                let mut victim_key = (
                    scheduled.request.steps,
                    scheduled.arrival_step,
                    submit_index,
                );
                for (pos, (s, idx)) in self.queue.iter().enumerate() {
                    let key = (s.request.steps, s.arrival_step, *idx);
                    if key > victim_key {
                        victim_key = key;
                        victim_pos = Some(pos);
                    }
                }
                match victim_pos {
                    None => Backpressure::Shed {
                        id: scheduled.request.id,
                    },
                    Some(pos) => {
                        let (shed, _) = self.queue.remove(pos);
                        self.queue.push((scheduled, submit_index));
                        Backpressure::Shed {
                            id: shed.request.id,
                        }
                    }
                }
            }
        }
    }

    /// Runs the policy at one step boundary. `inflight` carries one entry
    /// per in-flight stream, oldest first; the returned actions tell the
    /// caller which stream keys to park and what to admit, in order.
    pub(crate) fn boundary(
        &mut self,
        inflight: &[InflightRef],
        max_batch: usize,
        clock: usize,
        pending_future: usize,
    ) -> BoundaryActions {
        if self.queue.is_empty() && self.parked.is_empty() {
            return BoundaryActions::default();
        }
        // The candidate set: queued arrivals and parked streams, merged in
        // canonical arrival order.
        enum Source {
            Queue(usize),
            Parked(usize),
        }
        let mut cands: Vec<(Candidate, Source)> =
            Vec::with_capacity(self.queue.len() + self.parked.len());
        for (pos, (s, idx)) in self.queue.iter().enumerate() {
            cands.push((
                Candidate {
                    id: s.request.id,
                    tenant: s.request.tenant,
                    priority: s.request.priority,
                    arrival_step: s.arrival_step,
                    submit_index: *idx,
                    remaining: s.request.steps,
                    parked: false,
                },
                Source::Queue(pos),
            ));
        }
        for (pos, p) in self.parked.iter().enumerate() {
            cands.push((
                Candidate {
                    id: p.scheduled.request.id,
                    tenant: p.scheduled.request.tenant,
                    priority: p.scheduled.request.priority,
                    arrival_step: p.scheduled.arrival_step,
                    submit_index: p.submit_index,
                    remaining: p.remaining,
                    parked: true,
                },
                Source::Parked(pos),
            ));
        }
        cands.sort_by_key(|(c, _)| (c.arrival_step, c.submit_index));
        let candidates: Vec<Candidate> = cands.iter().map(|(c, _)| *c).collect();
        let infos: Vec<InflightInfo> = inflight
            .iter()
            .map(|r| InflightInfo {
                id: r.scheduled.request.id,
                tenant: r.scheduled.request.tenant,
                priority: r.scheduled.request.priority,
                remaining: r.remaining,
            })
            .collect();
        let costs: Vec<CostEstimate> = candidates
            .iter()
            .map(|c| self.cost.stream_cost(c.remaining))
            .collect();
        let inflight_costs: Vec<CostEstimate> = infos
            .iter()
            .map(|s| self.cost.stream_cost(s.remaining))
            .collect();
        let ctx = AdmitCtx {
            candidates: &candidates,
            inflight: &infos,
            capacity: max_batch.saturating_sub(inflight.len()),
            max_batch,
            clock,
            pending_future,
            costs: &costs,
            inflight_costs: &inflight_costs,
        };
        let decision = self.policy.admit(&ctx);

        // Sanitize the decision: drop out-of-range handles, dedup, and cap
        // admissions to what parking actually frees. A policy bug degrades
        // to a smaller admission, never to a corrupted batch.
        let mut park: Vec<usize> = Vec::new();
        for &p in &decision.park {
            if p < inflight.len() && !park.contains(&p) {
                park.push(p);
            }
        }
        let mut admit: Vec<usize> = Vec::new();
        for &a in &decision.admit {
            if a < candidates.len() && !admit.contains(&a) {
                admit.push(a);
            }
        }
        if admit.is_empty() {
            park.clear();
        }
        let allowed = max_batch.saturating_sub(inflight.len() - park.len());
        admit.truncate(allowed);
        if admit.is_empty() {
            park.clear();
        }

        let mut actions = BoundaryActions::default();
        // Record parks first; removal flags only cover the pre-park length
        // so a stream parked at this boundary cannot resume at it too.
        let parked_before = self.parked.len();
        let mut rm_parked = vec![false; parked_before];
        let mut rm_queue = vec![false; self.queue.len()];
        for &p in &park {
            let r = &inflight[p];
            actions.park.push(r.stream_key);
            self.parked.push(ParkedEntry {
                stream_key: r.stream_key,
                scheduled: r.scheduled,
                submit_index: r.submit_index,
                remaining: r.remaining,
            });
        }
        for &a in &admit {
            match cands[a].1 {
                Source::Queue(pos) => {
                    rm_queue[pos] = true;
                    let (scheduled, submit_index) = self.queue[pos];
                    actions.admit.push(Admitted::Fresh {
                        scheduled,
                        submit_index,
                    });
                }
                Source::Parked(pos) => {
                    debug_assert!(pos < parked_before);
                    rm_parked[pos] = true;
                    let p = &self.parked[pos];
                    actions.admit.push(Admitted::Resumed {
                        stream_key: p.stream_key,
                        submit_index: p.submit_index,
                    });
                }
            }
        }
        let mut qi = 0usize;
        self.queue.retain(|_| {
            let keep = !rm_queue[qi];
            qi += 1;
            keep
        });
        let mut pi = 0usize;
        self.parked.retain(|_| {
            let keep = pi >= parked_before || !rm_parked[pi];
            pi += 1;
            keep
        });
        actions
    }
}

/// Per-request timing record, in virtual steps (see [`ServeStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestStats {
    /// The request identifier.
    pub id: u64,
    /// The submitting tenant.
    pub tenant: TenantId,
    /// When the request arrived.
    pub arrival_step: usize,
    /// Boundary at which it was admitted into the in-flight batch.
    pub admitted_step: usize,
    /// Boundary at which its stream retired (its output became final).
    pub completed_step: usize,
    /// Steps spent queued: `admitted_step - arrival_step`.
    pub queue_delay: usize,
    /// Steps spent actually denoising in the batch:
    /// `completed_step - admitted_step - parked_steps`; equals the
    /// request's step budget (a stream never stalls while in flight).
    pub steps_in_batch: usize,
    /// Steps spent parked by a preempting policy between admission and
    /// completion (0 under non-preempting policies). The latency identity
    /// is `latency == queue_delay + steps_in_batch + parked_steps`.
    pub parked_steps: usize,
    /// End-to-end latency: `completed_step - arrival_step`.
    pub latency: usize,
}

/// Serializable record of one [`Scheduler::run`]: per-request queueing
/// delay / time-in-batch / latency on the virtual clock, plus per-round
/// batch occupancy and wall-clock step latency.
///
/// The virtual clock counts outer denoise rounds: every batched Heun round
/// advances it by one, and an idle scheduler (nothing in flight, next
/// arrival in the future) jumps forward without spending rounds — so
/// `rounds <= final_step`, with equality when the system never idles.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Batched Heun rounds executed.
    pub rounds: usize,
    /// Virtual clock when the last stream retired.
    pub final_step: usize,
    /// In-flight batch size at each executed round.
    pub batch_occupancy: Vec<usize>,
    /// Pending-queue depth after admission at each executed round — the
    /// timeline backpressure tuning reads.
    pub queue_depth: Vec<usize>,
    /// Wall-clock nanoseconds spent in each executed round.
    pub step_latency_ns: Vec<u64>,
    /// Simulated accelerator energy of each executed round, pJ, from the
    /// scheduler's [`crate::cost::CostModel`] (all zeros under the
    /// default no-op model).
    pub round_energy_pj: Vec<f64>,
    /// Simulated PE-array occupancy of each executed round, `0.0..=1.0`
    /// (all zeros under the default no-op model).
    pub round_occupancy: Vec<f64>,
    /// Ids refused by [`BackpressurePolicy::Reject`], in arrival order.
    pub rejected_ids: Vec<u64>,
    /// Ids shed by a shedding backpressure policy, in shed order.
    pub shed_ids: Vec<u64>,
    /// Streams parked by a preempting admission policy over the run.
    pub preemptions: usize,
    /// One record per **completed** request, in submission order (shed and
    /// rejected requests appear only in the id lists above).
    pub requests: Vec<RequestStats>,
}

impl ServeStats {
    /// The stats record for one request id.
    pub fn request(&self, id: u64) -> Option<&RequestStats> {
        self.requests.iter().find(|r| r.id == id)
    }

    /// Mean end-to-end latency in virtual steps (`NaN` for an empty run).
    pub fn mean_latency(&self) -> f64 {
        mean(self.requests.iter().map(|r| r.latency as f64))
    }

    /// Mean queueing delay in virtual steps (`NaN` for an empty run).
    pub fn mean_queue_delay(&self) -> f64 {
        mean(self.requests.iter().map(|r| r.queue_delay as f64))
    }

    /// Mean in-flight batch size over executed rounds (`NaN` if none ran).
    pub fn mean_batch_occupancy(&self) -> f64 {
        mean(self.batch_occupancy.iter().map(|&o| o as f64))
    }

    /// Mean wall-clock nanoseconds per round (`NaN` if none ran).
    pub fn mean_step_latency_ns(&self) -> f64 {
        mean(self.step_latency_ns.iter().map(|&n| n as f64))
    }

    /// Largest pending-queue depth over executed rounds (0 if none ran).
    pub fn max_queue_depth(&self) -> usize {
        self.queue_depth.iter().copied().max().unwrap_or(0)
    }

    /// Mean pending-queue depth over executed rounds (`NaN` if none ran).
    pub fn mean_queue_depth(&self) -> f64 {
        mean(self.queue_depth.iter().map(|&d| d as f64))
    }

    /// Completed requests per virtual step (`NaN` for an empty run) — the
    /// throughput side of each scenario's throughput-vs-latency row.
    pub fn throughput_per_step(&self) -> f64 {
        if self.final_step == 0 {
            return f64::NAN;
        }
        self.requests.len() as f64 / self.final_step as f64
    }

    /// Nearest-rank percentile of per-request end-to-end latency, in
    /// virtual steps: the smallest recorded latency `v` such that at least
    /// `pct`% of requests finished in `v` steps or fewer (rank
    /// `ceil(pct/100 · n)`, clamped to `1..=n`). Deterministic — a pure
    /// function of the recorded latencies, independent of request order.
    /// Returns `None` when no requests were recorded.
    pub fn latency_percentile(&self, pct: f64) -> Option<usize> {
        let mut latencies: Vec<usize> = self.requests.iter().map(|r| r.latency).collect();
        if latencies.is_empty() {
            return None;
        }
        latencies.sort_unstable();
        let n = latencies.len();
        let rank = ((pct / 100.0 * n as f64).ceil() as usize).clamp(1, n);
        Some(latencies[rank - 1])
    }

    /// Median (nearest-rank p50) end-to-end latency in virtual steps.
    pub fn p50_latency(&self) -> Option<usize> {
        self.latency_percentile(50.0)
    }

    /// Nearest-rank p95 end-to-end latency in virtual steps.
    pub fn p95_latency(&self) -> Option<usize> {
        self.latency_percentile(95.0)
    }

    /// Nearest-rank p99 end-to-end latency in virtual steps.
    pub fn p99_latency(&self) -> Option<usize> {
        self.latency_percentile(99.0)
    }

    /// Total simulated energy across executed rounds, pJ (0.0 when no
    /// rounds ran or no cost model was configured).
    pub fn total_energy_pj(&self) -> f64 {
        self.round_energy_pj.iter().sum()
    }

    /// Simulated energy per completed image, pJ (`NaN` for an empty run).
    pub fn energy_per_image_pj(&self) -> f64 {
        if self.requests.is_empty() {
            return f64::NAN;
        }
        self.total_energy_pj() / self.requests.len() as f64
    }

    /// Mean simulated PE occupancy over executed rounds (`NaN` if none
    /// ran).
    pub fn mean_occupancy(&self) -> f64 {
        mean(self.round_occupancy.iter().copied())
    }

    /// Peak simulated PE occupancy over executed rounds (0.0 if none
    /// ran).
    pub fn peak_occupancy(&self) -> f64 {
        self.round_occupancy.iter().copied().fold(0.0, f64::max)
    }

    /// Per-tenant rollups of the request records, ascending by tenant id.
    pub fn tenant_rollups(&self) -> Vec<TenantRollup> {
        let mut by_tenant: BTreeMap<TenantId, Vec<&RequestStats>> = BTreeMap::new();
        for r in &self.requests {
            by_tenant.entry(r.tenant).or_default().push(r);
        }
        by_tenant
            .into_iter()
            .map(|(tenant, rs)| TenantRollup {
                tenant,
                requests: rs.len(),
                total_steps: rs.iter().map(|r| r.steps_in_batch).sum(),
                mean_latency: mean(rs.iter().map(|r| r.latency as f64)),
                mean_queue_delay: mean(rs.iter().map(|r| r.queue_delay as f64)),
            })
            .collect()
    }

    /// The rollup for one tenant, or `None` if it submitted nothing.
    pub fn tenant(&self, tenant: TenantId) -> Option<TenantRollup> {
        self.tenant_rollups()
            .into_iter()
            .find(|t| t.tenant == tenant)
    }
}

/// Per-tenant aggregate of one serving run (see
/// [`ServeStats::tenant_rollups`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantRollup {
    /// The tenant.
    pub tenant: TenantId,
    /// Requests this tenant completed.
    pub requests: usize,
    /// Total denoise steps executed for the tenant (its compute share).
    pub total_steps: usize,
    /// Mean end-to-end latency of the tenant's requests, virtual steps.
    pub mean_latency: f64,
    /// Mean queueing delay of the tenant's requests, virtual steps.
    pub mean_queue_delay: f64,
}

/// Mean of an iterator, `NaN` when empty (mirrors the empty-run sentinel
/// convention of `sqdm_accel`'s `RunStats` ratios).
fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        f64::NAN
    } else {
        sum / n as f64
    }
}

/// Continuous-batching front-end over [`BatchSampler`].
///
/// See the module docs for the scheduling model; [`Scheduler::run`] is the
/// entry point.
#[derive(Debug, Clone, Copy)]
pub struct Scheduler {
    /// The batch sampler that executes each packed Heun round.
    pub sampler: BatchSampler,
    /// In-flight batch capacity. `1` degenerates to sequential serving.
    pub max_batch: usize,
    /// Admission order for queued requests.
    pub policy: AdmissionPolicy,
    /// Bound on the pending queue; `None` (the default) queues without
    /// limit and never sheds or rejects.
    pub queue_bound: Option<QueueBound>,
    /// Cost model the run's admission engine prices candidates with
    /// ([`CostModelConfig::Noop`] by default: zero estimates, decisions
    /// bitwise identical to a cost-free build).
    pub cost: CostModelConfig,
}

impl Scheduler {
    /// A FIFO scheduler with the given in-flight capacity, an unbounded
    /// pending queue, no cost model, and per-stream trace recording
    /// enabled.
    pub fn new(den: Denoiser, max_batch: usize) -> Self {
        Scheduler {
            sampler: BatchSampler::new(den),
            max_batch,
            policy: AdmissionPolicy::Fifo,
            queue_bound: None,
            cost: CostModelConfig::Noop,
        }
    }

    /// This scheduler with a different admission policy.
    pub fn with_policy(mut self, policy: AdmissionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// This scheduler with a cost model supplying admission estimates and
    /// per-round energy/occupancy accounting.
    pub fn with_cost_model(mut self, cost: CostModelConfig) -> Self {
        self.cost = cost;
        self
    }

    /// This scheduler with a bounded pending queue.
    pub fn with_queue_bound(mut self, bound: QueueBound) -> Self {
        self.queue_bound = Some(bound);
        self
    }

    /// This scheduler with trace recording switched on or off.
    pub fn with_traces(mut self, record: bool) -> Self {
        self.sampler = self.sampler.with_traces(record);
        self
    }

    /// Serves `requests` to completion under continuous batching and
    /// returns one output per **completed** request (in submission order)
    /// plus the run's [`ServeStats`]. With an unbounded queue (the
    /// default) every request completes; under a [`QueueBound`] the shed
    /// and rejected ids are recorded in the stats instead.
    ///
    /// At every step boundary the scheduler moves arrivals into the
    /// bounded pending queue (each getting a backpressure verdict), lets
    /// the admission [`Policy`] admit queued or parked work and park
    /// in-flight streams (up to [`Scheduler::max_batch`] in flight),
    /// executes one batched Heun round over the in-flight streams, then
    /// retires the streams that exhausted their budget. When nothing is in
    /// flight the clock jumps to the next arrival instead of spinning.
    ///
    /// Every output is bitwise identical to a solo [`crate::sample`] run
    /// for the same `(seed, steps)` — admission timing, neighbors, and
    /// `max_batch` never leak into any stream's arithmetic.
    ///
    /// # Errors
    ///
    /// Returns [`EdmError::Config`] for `max_batch == 0`, duplicate
    /// request ids, or a step budget below 2; propagates model errors.
    pub fn run(
        &self,
        net: &mut UNet,
        requests: &[ScheduledRequest],
        assignment: Option<&PrecisionAssignment>,
    ) -> Result<(Vec<ServedOutput>, ServeStats)> {
        let packs = PackCache::new();
        self.run_with_packs(net, requests, assignment, &packs)
    }

    /// [`Scheduler::run`] against a caller-owned [`PackCache`] (see
    /// [`BatchSampler::run_with_packs`]); how a resident model of a
    /// [`crate::registry::ModelRegistry`] serves without ever rebuilding
    /// its weight packs. Bitwise identical to [`Scheduler::run`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scheduler::run`].
    pub fn run_with_packs(
        &self,
        net: &mut UNet,
        requests: &[ScheduledRequest],
        assignment: Option<&PrecisionAssignment>,
        packs: &PackCache,
    ) -> Result<(Vec<ServedOutput>, ServeStats)> {
        if self.max_batch == 0 {
            return Err(EdmError::Config {
                reason: "scheduler max_batch must be at least 1".into(),
            });
        }
        validate_unique_ids(requests.iter().map(|r| r.request.id))?;
        for r in requests {
            // Validate every budget up front: a malformed request should
            // fail the submission, not abort the batch mid-serve.
            if r.request.steps < 2 {
                return Err(EdmError::Config {
                    reason: format!(
                        "request {} has step budget {}; at least 2 required",
                        r.request.id, r.request.steps
                    ),
                });
            }
        }
        let mcfg = *net.config();
        let n = requests.len();
        let mut req_stats: Vec<RequestStats> = requests
            .iter()
            .map(|r| RequestStats {
                id: r.request.id,
                tenant: r.request.tenant,
                arrival_step: r.arrival_step,
                admitted_step: 0,
                completed_step: 0,
                queue_delay: 0,
                steps_in_batch: 0,
                parked_steps: 0,
                latency: 0,
            })
            .collect();
        let mut stats = ServeStats::default();

        // Streams are created lazily at admission, in admission order;
        // `owner[k]` maps stream `k` back to its submission index. Retired
        // and parked streams stay in place (they hold final or frozen
        // state). Submission indices not yet visible to the engine sit in
        // `future`, sorted in canonical `(arrival_step, submission)` order.
        let mut future: Vec<usize> = (0..n).collect();
        future.sort_by_key(|&i| (requests[i].arrival_step, i));
        let mut engine =
            AdmissionEngine::with_cost(self.policy, self.queue_bound, self.cost, self.max_batch);
        let mut streams: Vec<Stream> = Vec::with_capacity(n);
        let mut owner: Vec<usize> = Vec::with_capacity(n);
        let mut inflight: Vec<usize> = Vec::new();
        let mut parked_at: Vec<usize> = vec![0; n];
        let mut completed: Vec<bool> = vec![false; n];
        let mut clock = 0usize;

        arena::scope(|| {
            while !future.is_empty() || engine.has_work() || !inflight.is_empty() {
                if inflight.is_empty() && !engine.has_work() {
                    // Idle: jump to the earliest future arrival.
                    let earliest = future
                        .iter()
                        .map(|&i| requests[i].arrival_step)
                        .min()
                        .expect("loop invariant: some work remains");
                    clock = clock.max(earliest);
                }
                // Arrivals at or before this boundary enter the bounded
                // pending queue, in canonical order, one backpressure
                // verdict each.
                while let Some(&i) = future.first() {
                    if requests[i].arrival_step > clock {
                        break;
                    }
                    future.remove(0);
                    match engine.enqueue(requests[i], i) {
                        Backpressure::Accepted => {}
                        Backpressure::Rejected(id) => stats.rejected_ids.push(id),
                        Backpressure::Shed { id } => stats.shed_ids.push(id),
                    }
                }
                // Step-boundary admission through the shared policy path.
                let inflight_refs: Vec<InflightRef> = inflight
                    .iter()
                    .map(|&k| InflightRef {
                        stream_key: k,
                        scheduled: requests[owner[k]],
                        submit_index: owner[k],
                        remaining: streams[k].request.steps - streams[k].cursor,
                    })
                    .collect();
                let actions = engine.boundary(&inflight_refs, self.max_batch, clock, future.len());
                for &k in &actions.park {
                    inflight.retain(|&key| key != k);
                    parked_at[owner[k]] = clock;
                    stats.preemptions += 1;
                }
                for admitted in &actions.admit {
                    match *admitted {
                        Admitted::Fresh {
                            scheduled,
                            submit_index,
                        } => {
                            let stream = self.sampler.make_stream(&mcfg, &scheduled.request)?;
                            owner.push(submit_index);
                            inflight.push(streams.len());
                            streams.push(stream);
                            req_stats[submit_index].admitted_step = clock;
                            req_stats[submit_index].queue_delay = clock - scheduled.arrival_step;
                        }
                        Admitted::Resumed {
                            stream_key,
                            submit_index,
                        } => {
                            inflight.push(stream_key);
                            req_stats[submit_index].parked_steps += clock - parked_at[submit_index];
                        }
                    }
                }
                if inflight.is_empty() {
                    if let Some(next) = future
                        .iter()
                        .map(|&i| requests[i].arrival_step)
                        .filter(|&a| a > clock)
                        .min()
                    {
                        // A waiting gang: advance to the next arrival.
                        clock = next;
                        continue;
                    }
                    if engine.has_work() {
                        // Queued or parked work the policy refuses to admit
                        // with nothing in flight and nothing else coming
                        // would spin forever; surface the stall instead.
                        return Err(EdmError::Config {
                            reason: "admission stalled: queued work with no in-flight \
                                     streams and no future arrivals"
                                .into(),
                        });
                    }
                    continue;
                }
                // One batched Heun round over the in-flight streams.
                let t0 = Instant::now();
                self.sampler
                    .round(net, &mut streams, &inflight, assignment, packs)?;
                stats.step_latency_ns.push(t0.elapsed().as_nanos() as u64);
                stats.batch_occupancy.push(inflight.len());
                stats.queue_depth.push(engine.queue_len());
                let (round_pj, round_occ) = engine.round_accounting(inflight.len());
                stats.round_energy_pj.push(round_pj);
                stats.round_occupancy.push(round_occ);
                stats.rounds += 1;
                clock += 1;
                // Retire exhausted streams; the packed batch shrinks here
                // and refills at the next boundary's admission.
                inflight.retain(|&k| {
                    let done = streams[k].cursor >= streams[k].request.steps;
                    if done {
                        let i = owner[k];
                        completed[i] = true;
                        req_stats[i].completed_step = clock;
                        req_stats[i].steps_in_batch =
                            clock - req_stats[i].admitted_step - req_stats[i].parked_steps;
                        req_stats[i].latency = clock - requests[i].arrival_step;
                    }
                    !done
                });
            }
            Ok::<(), crate::error::EdmError>(())
        })?;
        stats.final_step = clock;
        stats.requests = (0..n)
            .filter(|&i| completed[i])
            .map(|i| req_stats[i])
            .collect();

        // Outputs back in submission order. Shed and rejected requests
        // have no output; their ids live in `shed_ids` / `rejected_ids`.
        let mut slots: Vec<Option<ServedOutput>> = (0..n).map(|_| None).collect();
        for (k, stream) in streams.into_iter().enumerate() {
            if completed[owner[k]] {
                slots[owner[k]] = Some(stream.into_output());
            }
        }
        let outputs = slots.into_iter().flatten().collect();
        Ok((outputs, stats))
    }
}

/// Concatenates the active streams' states along the batch axis.
fn pack_states(streams: &[Stream], active: &[usize], chw: usize) -> Result<Tensor> {
    let dims = streams[active[0]].x.dims();
    let mut packed = arena::take::<f32>(active.len() * chw);
    for &i in active {
        packed.extend_from_slice(streams[i].x.as_slice());
    }
    Ok(Tensor::from_vec(
        packed,
        [active.len(), dims[1], dims[2], dims[3]],
    )?)
}

/// Splits a packed activation event per stream and appends one trace step
/// to each active stream's `(block, stage)` trace.
fn record_event(streams: &mut [Stream], active: &[usize], ev: &ActEvent<'_>) {
    let c = ev.tensor.dims()[1];
    for (slot, &i) in active.iter().enumerate() {
        let sample = ev
            .tensor
            .batch_sample(slot)
            .expect("observed activation is [A, C, H, W]");
        let sparsity = channel_sparsity(&sample);
        streams[i]
            .traces
            .entry((ev.block_index, ev.stage))
            .or_insert_with(|| TemporalTrace::new(c))
            .push_step(sparsity);
    }
}

/// Convenience wrapper: serves `requests` on a fresh [`BatchSampler`] and
/// returns the outputs in request order.
///
/// # Errors
///
/// Propagates [`BatchSampler::run`] errors.
pub fn serve_batch(
    net: &mut UNet,
    den: &Denoiser,
    requests: &[ServeRequest],
    assignment: Option<&PrecisionAssignment>,
) -> Result<Vec<ServedOutput>> {
    BatchSampler::new(*den).run(net, requests, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::UNetConfig;
    use crate::sampler::{sample, SamplerConfig};
    use crate::schedule::EdmSchedule;
    use sqdm_quant::{BlockPrecision, ExecMode, QuantFormat};

    fn fixture() -> (UNet, Denoiser) {
        let mut rng = Rng::seed_from(1);
        let net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
        (net, Denoiser::new(EdmSchedule::default()))
    }

    fn bits(t: &Tensor) -> Vec<u32> {
        t.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn latency_percentiles_use_nearest_rank() {
        let stats_with = |latencies: &[usize]| ServeStats {
            requests: latencies
                .iter()
                .enumerate()
                .map(|(i, &latency)| RequestStats {
                    id: i as u64,
                    tenant: 0,
                    arrival_step: 0,
                    admitted_step: 0,
                    completed_step: latency,
                    queue_delay: 0,
                    steps_in_batch: latency,
                    parked_steps: 0,
                    latency,
                })
                .collect(),
            ..ServeStats::default()
        };

        // Empty run: no percentiles, not a panic or a NaN.
        let empty = ServeStats::default();
        assert_eq!(empty.p50_latency(), None);
        assert_eq!(empty.p95_latency(), None);
        assert_eq!(empty.p99_latency(), None);

        // Single request: every percentile is that request.
        let one = stats_with(&[7]);
        assert_eq!(one.p50_latency(), Some(7));
        assert_eq!(one.p99_latency(), Some(7));

        // Ten requests 1..=10: nearest rank picks ceil(p/100 * 10).
        let ten = stats_with(&[10, 1, 9, 2, 8, 3, 7, 4, 6, 5]);
        assert_eq!(ten.p50_latency(), Some(5));
        assert_eq!(ten.p95_latency(), Some(10));
        assert_eq!(ten.p99_latency(), Some(10));
        assert_eq!(ten.latency_percentile(0.0), Some(1));
        assert_eq!(ten.latency_percentile(100.0), Some(10));
        assert_eq!(ten.latency_percentile(10.0), Some(1));
        assert_eq!(ten.latency_percentile(11.0), Some(2));

        // Order independence: percentiles are a function of the multiset.
        let sorted = stats_with(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        for pct in [0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
            assert_eq!(
                ten.latency_percentile(pct),
                sorted.latency_percentile(pct),
                "pct {pct}"
            );
        }
    }

    #[test]
    fn serving_is_bitwise_identical_to_individual_sampling() {
        let (mut net, den) = fixture();
        let requests = [
            ServeRequest::new(0, 3).seed(11),
            ServeRequest::new(1, 5).seed(12),
            ServeRequest::new(2, 3).seed(13),
        ];
        let served = serve_batch(&mut net, &den, &requests, None).unwrap();
        assert_eq!(served.len(), 3);
        for (req, out) in requests.iter().zip(&served) {
            assert_eq!(req.id, out.id);
            let mut rng = Rng::seed_from(req.seed);
            let single = sample(
                &mut net,
                &den,
                1,
                SamplerConfig { steps: req.steps },
                None,
                &mut rng,
            )
            .unwrap();
            assert_eq!(out.image.dims(), single.dims());
            assert_eq!(bits(&out.image), bits(&single), "request {}", req.id);
        }
    }

    #[test]
    fn quantized_serving_matches_individual_sampling_in_both_modes() {
        let (mut net, den) = fixture();
        let base = PrecisionAssignment::uniform(
            crate::model::block_ids::COUNT,
            BlockPrecision::uniform(QuantFormat::int8()),
            "INT8",
        );
        for mode in [ExecMode::FakeQuant, ExecMode::NativeInt] {
            let asg = base.clone().with_mode(mode);
            let requests = [ServeRequest::new(7, 2), ServeRequest::new(8, 4)];
            let served = serve_batch(&mut net, &den, &requests, Some(&asg)).unwrap();
            for (req, out) in requests.iter().zip(&served) {
                let mut rng = Rng::seed_from(req.seed);
                let single = sample(
                    &mut net,
                    &den,
                    1,
                    SamplerConfig { steps: req.steps },
                    Some(&asg),
                    &mut rng,
                )
                .unwrap();
                assert_eq!(
                    bits(&out.image),
                    bits(&single),
                    "{mode:?} request {}",
                    req.id
                );
            }
        }
    }

    #[test]
    fn per_stream_traces_cover_every_step_and_yield_masks() {
        let (mut net, den) = fixture();
        let requests = [ServeRequest::new(1, 4), ServeRequest::new(2, 2)];
        let served = serve_batch(&mut net, &den, &requests, None).unwrap();
        for (req, out) in requests.iter().zip(&served) {
            let keys = out.traced_keys();
            assert!(!keys.is_empty(), "request {} recorded no traces", req.id);
            for &(b, st) in &keys {
                let trace = out.trace(b, st).unwrap();
                // One trace step per denoising step of *this* stream, even
                // though its batch neighbor ran a different budget.
                assert_eq!(trace.steps(), req.steps, "block {b} stage {st}");
                let m0 = out.change_mask(b, st, 0, 0.05).unwrap();
                assert!(m0.is_fully_dense(), "step 0 must recompute everything");
                assert!(out.change_mask(b, st, req.steps - 1, 0.05).is_some());
            }
        }
        // The per-stream masks assemble into the qgemm_delta_multi layout:
        // streams back to back, channels expanded to reduction rows.
        let (b, st) = served[0].traced_keys()[0];
        let rows = delta_row_masks(&served, b, st, 1, 0.05, 9).unwrap();
        let per: usize = served[0].trace(b, st).unwrap().channels() * 9;
        assert_eq!(rows.len(), served.len() * per);
        // Requesting a step beyond the shortest stream yields None.
        assert!(delta_row_masks(&served, b, st, 3, 0.05, 9).is_none());
    }

    #[test]
    fn trace_recording_can_be_disabled() {
        let (mut net, den) = fixture();
        let out = BatchSampler::new(den)
            .with_traces(false)
            .run(&mut net, &[ServeRequest::new(0, 2)], None)
            .unwrap();
        assert!(out[0].traced_keys().is_empty());
    }

    #[test]
    fn zero_step_requests_are_rejected_and_empty_batches_are_fine() {
        let (mut net, den) = fixture();
        assert!(serve_batch(&mut net, &den, &[ServeRequest::new(0, 0)], None).is_err());
        assert!(serve_batch(&mut net, &den, &[], None).unwrap().is_empty());
    }

    #[test]
    fn duplicate_request_ids_are_rejected_at_entry() {
        let (mut net, den) = fixture();
        let dupes = [ServeRequest::new(3, 2), ServeRequest::new(3, 4)];
        let err = serve_batch(&mut net, &den, &dupes, None).unwrap_err();
        assert!(
            matches!(&err, EdmError::Config { reason } if reason.contains("duplicate")
                && reason.contains('3')),
            "unexpected error {err:?}"
        );
        // Same ids with distinct seeds are still duplicates — lookup by id
        // would be ambiguous either way.
        let sched = [ScheduledRequest::at(9, 2, 0), ScheduledRequest::at(9, 3, 1)];
        let err = Scheduler::new(den, 4)
            .run(&mut net, &sched, None)
            .unwrap_err();
        assert!(matches!(err, EdmError::Config { .. }));
    }

    /// Solo `sample()` references for a set of scheduled requests.
    fn solo_references(
        net: &mut UNet,
        den: &Denoiser,
        requests: &[ScheduledRequest],
    ) -> Vec<Tensor> {
        requests
            .iter()
            .map(|r| {
                let mut rng = Rng::seed_from(r.request.seed);
                sample(
                    net,
                    den,
                    1,
                    SamplerConfig {
                        steps: r.request.steps,
                    },
                    None,
                    &mut rng,
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn continuous_batching_is_bitwise_identical_to_solo_sampling() {
        let (mut net, den) = fixture();
        // Staggered arrivals with mixed budgets: request 2 joins while 0
        // and 1 are mid-flight, 3 arrives after 1 has already retired.
        let requests = [
            ScheduledRequest::at(0, 4, 0),
            ScheduledRequest::at(1, 2, 0),
            ScheduledRequest::at(2, 3, 1),
            ScheduledRequest::at(3, 2, 3),
        ];
        let solo = solo_references(&mut net, &den, &requests);
        let (served, stats) = Scheduler::new(den, 3)
            .run(&mut net, &requests, None)
            .unwrap();
        for ((req, out), single) in requests.iter().zip(&served).zip(&solo) {
            assert_eq!(req.request.id, out.id);
            assert_eq!(bits(&out.image), bits(single), "request {}", out.id);
        }
        // Request 0/1 admitted at 0; 2 at 1 (capacity 3); 3 at 3.
        assert_eq!(stats.request(0).unwrap().admitted_step, 0);
        assert_eq!(stats.request(2).unwrap().admitted_step, 1);
        assert_eq!(stats.request(2).unwrap().queue_delay, 0);
        assert_eq!(stats.request(3).unwrap().latency, 2);
        assert_eq!(stats.rounds, stats.batch_occupancy.len());
        assert_eq!(stats.step_latency_ns.len(), stats.rounds);
        assert!(stats.mean_batch_occupancy() > 1.0);
    }

    #[test]
    fn requests_arriving_after_step_zero_are_served_after_an_idle_jump() {
        // Edge case: *nothing* arrives at step 0 — the virtual clock must
        // jump to the first arrival instead of spinning empty rounds.
        let (mut net, den) = fixture();
        let requests = [ScheduledRequest::at(0, 2, 5), ScheduledRequest::at(1, 2, 7)];
        let solo = solo_references(&mut net, &den, &requests);
        let (served, stats) = Scheduler::new(den, 2)
            .run(&mut net, &requests, None)
            .unwrap();
        for (out, single) in served.iter().zip(&solo) {
            assert_eq!(bits(&out.image), bits(single), "request {}", out.id);
        }
        // No queueing: both admitted the moment they arrive.
        assert_eq!(stats.request(0).unwrap().admitted_step, 5);
        assert_eq!(stats.request(1).unwrap().admitted_step, 7);
        assert_eq!(stats.mean_queue_delay(), 0.0);
        // Rounds executed: steps 5,6 (request 0) and 7,8 (request 1).
        assert_eq!(stats.rounds, 4);
        assert_eq!(stats.final_step, 9);
    }

    #[test]
    fn minimum_budget_request_joining_the_final_boundary_is_exact() {
        // Edge case: a `steps == 2` request joins at the last boundary
        // where the long-running stream is still in flight, so its first
        // round is the neighbor's last.
        let (mut net, den) = fixture();
        let requests = [ScheduledRequest::at(0, 4, 0), ScheduledRequest::at(1, 2, 3)];
        let solo = solo_references(&mut net, &den, &requests);
        let (served, stats) = Scheduler::new(den, 2)
            .run(&mut net, &requests, None)
            .unwrap();
        for (out, single) in served.iter().zip(&solo) {
            assert_eq!(bits(&out.image), bits(single), "request {}", out.id);
        }
        // They overlap exactly at round 3 (occupancy 2), then the short
        // request finishes alone.
        assert_eq!(stats.batch_occupancy, vec![1, 1, 1, 2, 1]);
        assert_eq!(stats.request(1).unwrap().steps_in_batch, 2);
        assert_eq!(stats.final_step, 5);
    }

    #[test]
    fn max_batch_one_degenerates_to_sequential_serving() {
        let (mut net, den) = fixture();
        let requests = [
            ScheduledRequest::at(0, 3, 0),
            ScheduledRequest::at(1, 2, 0),
            ScheduledRequest::at(2, 2, 1),
        ];
        let solo = solo_references(&mut net, &den, &requests);
        let (served, stats) = Scheduler::new(den, 1)
            .run(&mut net, &requests, None)
            .unwrap();
        for (out, single) in served.iter().zip(&solo) {
            assert_eq!(bits(&out.image), bits(single), "request {}", out.id);
        }
        // Strictly one stream in flight at every round, FIFO order.
        assert!(stats.batch_occupancy.iter().all(|&o| o == 1));
        assert_eq!(stats.rounds, 3 + 2 + 2);
        assert_eq!(stats.request(1).unwrap().admitted_step, 3);
        assert_eq!(stats.request(2).unwrap().admitted_step, 5);
        assert!(Scheduler::new(den, 0)
            .run(&mut net, &requests, None)
            .is_err());
    }

    #[test]
    fn shortest_budget_first_reorders_admission() {
        let (mut net, den) = fixture();
        // Capacity 1; both arrive at step 0; SBF admits the short request
        // first even though it was submitted second.
        let requests = [ScheduledRequest::at(0, 4, 0), ScheduledRequest::at(1, 2, 0)];
        let solo = solo_references(&mut net, &den, &requests);
        let sched = Scheduler::new(den, 1).with_policy(AdmissionPolicy::ShortestBudgetFirst);
        let (served, stats) = sched.run(&mut net, &requests, None).unwrap();
        assert_eq!(stats.request(1).unwrap().admitted_step, 0);
        assert_eq!(stats.request(0).unwrap().admitted_step, 2);
        // Reordering is pure scheduling: outputs still match solo runs.
        for (out, single) in served.iter().zip(&solo) {
            assert_eq!(bits(&out.image), bits(single), "request {}", out.id);
        }
    }

    #[test]
    fn gang_scheduling_waits_and_loses_on_mean_latency() {
        let (mut net, den) = fixture();
        // Staggered arrivals: continuous batching admits each request as
        // it lands; the gang baseline makes the first arrival wait for the
        // full batch to assemble.
        let requests = [
            ScheduledRequest::at(0, 3, 0),
            ScheduledRequest::at(1, 3, 2),
            ScheduledRequest::at(2, 3, 6),
        ];
        let solo = solo_references(&mut net, &den, &requests);
        let (cont_out, cont) = Scheduler::new(den, 3)
            .run(&mut net, &requests, None)
            .unwrap();
        let gang_sched = Scheduler::new(den, 3).with_policy(AdmissionPolicy::Gang);
        let (gang_out, gang) = gang_sched.run(&mut net, &requests, None).unwrap();
        // Both admission disciplines are bitwise transparent.
        for ((out, single), gout) in cont_out.iter().zip(&solo).zip(&gang_out) {
            assert_eq!(bits(&out.image), bits(single), "request {}", out.id);
            assert_eq!(bits(&gout.image), bits(single), "gang request {}", gout.id);
        }
        // The gang launches only once all three arrived (step 6).
        assert!(gang.requests.iter().all(|r| r.admitted_step == 6));
        assert_eq!(gang.request(0).unwrap().queue_delay, 6);
        assert_eq!(cont.mean_queue_delay(), 0.0);
        assert!(
            cont.mean_latency() < gang.mean_latency(),
            "continuous {} vs gang {}",
            cont.mean_latency(),
            gang.mean_latency()
        );
        // A partial final gang still flushes: capacity above the request
        // count must not deadlock.
        let (flushed, fstats) = Scheduler::new(den, 8)
            .with_policy(AdmissionPolicy::Gang)
            .run(&mut net, &requests, None)
            .unwrap();
        assert_eq!(flushed.len(), 3);
        // The flush fires once every pending request has arrived.
        assert!(fstats.requests.iter().all(|r| r.admitted_step == 6));
    }

    #[test]
    fn fair_share_cycles_tenants_and_is_deterministic() {
        let (mut net, den) = fixture();
        // Tenant 7 floods the queue at step 0; tenant 2 submits one
        // request. With capacity 2, fair share must give tenant 2 a slot
        // in the first admission cycle instead of serving the flood FIFO.
        let requests = [
            ScheduledRequest::new(ServeRequest::new(0, 2).tenant(7), 0),
            ScheduledRequest::new(ServeRequest::new(1, 2).tenant(7), 0),
            ScheduledRequest::new(ServeRequest::new(2, 2).tenant(7), 0),
            ScheduledRequest::new(ServeRequest::new(3, 2).tenant(2), 0),
        ];
        let solo = solo_references(&mut net, &den, &requests);
        let sched = Scheduler::new(den, 2).with_policy(AdmissionPolicy::FairShare);
        let (served, stats) = sched.run(&mut net, &requests, None).unwrap();
        // First cycle starts at the smallest tenant (2), then tenant 7:
        // request 3 and request 0 admitted at step 0.
        assert_eq!(stats.request(3).unwrap().admitted_step, 0);
        assert_eq!(stats.request(0).unwrap().admitted_step, 0);
        // The remaining flood requests backfill in FIFO order within the
        // tenant.
        assert_eq!(stats.request(1).unwrap().admitted_step, 2);
        assert_eq!(stats.request(2).unwrap().admitted_step, 2);
        // Scheduling never touches arithmetic: still bitwise solo.
        for (out, single) in served.iter().zip(&solo) {
            assert_eq!(bits(&out.image), bits(single), "request {}", out.id);
        }
        // Determinism: the same request set reproduces the same stats.
        let (_, stats2) = sched.run(&mut net, &requests, None).unwrap();
        assert_eq!(stats.requests, stats2.requests);
    }

    #[test]
    fn fair_share_resumes_cycle_across_boundaries() {
        let (mut net, den) = fixture();
        // Three tenants, one request each, capacity 1: the cycle must
        // visit 1, then 2, then 3 across consecutive admission
        // boundaries rather than restarting at tenant 1.
        let requests = [
            ScheduledRequest::new(ServeRequest::new(0, 2).tenant(1), 0),
            ScheduledRequest::new(ServeRequest::new(1, 2).tenant(2), 0),
            ScheduledRequest::new(ServeRequest::new(2, 2).tenant(3), 0),
        ];
        let sched = Scheduler::new(den, 1).with_policy(AdmissionPolicy::FairShare);
        let (_, stats) = sched.run(&mut net, &requests, None).unwrap();
        assert_eq!(stats.request(0).unwrap().admitted_step, 0);
        assert_eq!(stats.request(1).unwrap().admitted_step, 2);
        assert_eq!(stats.request(2).unwrap().admitted_step, 4);
    }

    #[test]
    fn tenant_rollups_aggregate_per_tenant() {
        let (mut net, den) = fixture();
        let requests = [
            ScheduledRequest::new(ServeRequest::new(0, 3).tenant(1), 0),
            ScheduledRequest::new(ServeRequest::new(1, 2).tenant(1), 0),
            ScheduledRequest::new(ServeRequest::new(2, 2).tenant(4), 0),
        ];
        let (_, stats) = Scheduler::new(den, 3)
            .run(&mut net, &requests, None)
            .unwrap();
        let rollups = stats.tenant_rollups();
        assert_eq!(rollups.len(), 2);
        assert_eq!(rollups[0].tenant, 1);
        assert_eq!(rollups[0].requests, 2);
        assert_eq!(rollups[0].total_steps, 5);
        assert_eq!(rollups[1].tenant, 4);
        assert_eq!(rollups[1].requests, 1);
        assert_eq!(stats.tenant(4).unwrap().total_steps, 2);
        assert!(stats.tenant(9).is_none());
    }

    #[test]
    fn pack_cache_reuse_across_runs_builds_packs_once() {
        use sqdm_quant::ExecMode;
        let (mut net, den) = fixture();
        let asg = PrecisionAssignment::uniform(
            crate::model::block_ids::COUNT,
            BlockPrecision::uniform(QuantFormat::int8()),
            "INT8",
        )
        .with_mode(ExecMode::NativeInt);
        let packs = PackCache::new();
        let sampler = BatchSampler::new(den).with_traces(false);
        let reqs = [ServeRequest::new(0, 2), ServeRequest::new(1, 3)];
        let out1 = sampler
            .run_with_packs(&mut net, &reqs, Some(&asg), &packs)
            .unwrap();
        let after_first = packs.builds();
        assert!(after_first > 0, "first run must build the packs");
        let reqs2 = [ServeRequest::new(2, 2), ServeRequest::new(3, 4)];
        let _ = sampler
            .run_with_packs(&mut net, &reqs2, Some(&asg), &packs)
            .unwrap();
        assert_eq!(
            packs.builds(),
            after_first,
            "second run must reuse every pack"
        );
        // And the cached path still serves solo-identical bits.
        let mut rng = Rng::seed_from(0);
        let single = sample(
            &mut net,
            &den,
            1,
            SamplerConfig { steps: 2 },
            Some(&asg),
            &mut rng,
        )
        .unwrap();
        assert_eq!(bits(&out1[0].image), bits(&single));
    }

    #[test]
    fn scheduler_with_simultaneous_arrivals_matches_batch_sampler() {
        // With everyone present at step 0 and capacity for all, the
        // scheduler is exactly `serve_batch` (same rounds, same bits,
        // traces included).
        let (mut net, den) = fixture();
        let plain = [ServeRequest::new(4, 3), ServeRequest::new(5, 2)];
        let batch = serve_batch(&mut net, &den, &plain, None).unwrap();
        let scheduled: Vec<ScheduledRequest> =
            plain.iter().map(|&r| ScheduledRequest::new(r, 0)).collect();
        let (served, stats) = Scheduler::new(den, 2)
            .run(&mut net, &scheduled, None)
            .unwrap();
        for (a, b) in batch.iter().zip(&served) {
            assert_eq!(bits(&a.image), bits(&b.image));
            assert_eq!(a.traced_keys(), b.traced_keys());
        }
        assert_eq!(stats.rounds, 3);
        assert_eq!(stats.batch_occupancy, vec![2, 2, 1]);
    }

    #[test]
    fn serve_stats_serializes_and_empty_means_are_nan() {
        let (mut net, den) = fixture();
        let requests = [ScheduledRequest::at(0, 2, 0)];
        let (_, stats) = Scheduler::new(den, 1)
            .run(&mut net, &requests, None)
            .unwrap();
        assert_eq!(stats.mean_latency(), 2.0);
        assert!(!stats.mean_step_latency_ns().is_nan());
        let empty = ServeStats::default();
        assert!(empty.mean_latency().is_nan());
        assert!(empty.mean_queue_delay().is_nan());
        assert!(empty.mean_batch_occupancy().is_nan());
        assert!(empty.mean_queue_depth().is_nan());
        assert!(empty.throughput_per_step().is_nan());
        assert_eq!(empty.max_queue_depth(), 0);
        assert!(empty.request(0).is_none());
    }

    #[test]
    fn builder_sets_scheduling_attributes() {
        let r = ServeRequest::new(5, 4);
        assert_eq!(
            (r.id, r.seed, r.steps, r.tenant, r.priority),
            (5, 5, 4, 0, 0)
        );
        let r = ServeRequest::new(5, 4).tenant(3).priority(9).seed(77);
        assert_eq!(
            (r.id, r.seed, r.steps, r.tenant, r.priority),
            (5, 77, 4, 3, 9)
        );
    }

    #[test]
    fn priority_policy_admits_high_priority_first() {
        let (mut net, den) = fixture();
        // Capacity 1; everyone arrives at step 0. The prio-9 requests go
        // first (FIFO between them), the prio-0 request last.
        let requests = [
            ScheduledRequest::new(ServeRequest::new(0, 2), 0),
            ScheduledRequest::new(ServeRequest::new(1, 2).priority(9), 0),
            ScheduledRequest::new(ServeRequest::new(2, 2).priority(9), 0),
        ];
        let solo = solo_references(&mut net, &den, &requests);
        let sched = Scheduler::new(den, 1).with_policy(AdmissionPolicy::Priority);
        let (served, stats) = sched.run(&mut net, &requests, None).unwrap();
        assert_eq!(stats.request(1).unwrap().admitted_step, 0);
        assert_eq!(stats.request(2).unwrap().admitted_step, 2);
        assert_eq!(stats.request(0).unwrap().admitted_step, 4);
        // Priority is pure scheduling: outputs still match solo runs.
        for (out, single) in served.iter().zip(&solo) {
            assert_eq!(bits(&out.image), bits(single), "request {}", out.id);
        }
        let (_, stats2) = sched.run(&mut net, &requests, None).unwrap();
        assert_eq!(stats.requests, stats2.requests);
    }

    #[test]
    fn preempt_parks_and_resumes_bitwise_identically() {
        let (mut net, den) = fixture();
        // Capacity 1: the long request is mid-flight when the short one
        // arrives; SRPT parks the long stream, serves the short request,
        // then resumes the long stream bit-for-bit.
        let requests = [ScheduledRequest::at(0, 6, 0), ScheduledRequest::at(1, 2, 1)];
        let solo = solo_references(&mut net, &den, &requests);
        let sched = Scheduler::new(den, 1).with_policy(AdmissionPolicy::Preempt);
        let (served, stats) = sched.run(&mut net, &requests, None).unwrap();
        assert_eq!(stats.preemptions, 1);
        // The short request cut the line entirely.
        let short = stats.request(1).unwrap();
        assert_eq!((short.admitted_step, short.latency), (1, 2));
        // The long request paid exactly the park window, nothing else.
        let long = stats.request(0).unwrap();
        assert_eq!(long.admitted_step, 0);
        assert_eq!(long.parked_steps, 2);
        assert_eq!(long.steps_in_batch, 6);
        assert_eq!(long.completed_step, 8);
        assert_eq!(
            long.latency,
            long.queue_delay + long.steps_in_batch + long.parked_steps
        );
        // Park/resume is invisible to the arithmetic: both outputs are
        // bitwise the solo sample.
        for (out, single) in served.iter().zip(&solo) {
            assert_eq!(bits(&out.image), bits(single), "request {}", out.id);
        }
        let (_, stats2) = sched.run(&mut net, &requests, None).unwrap();
        assert_eq!(stats.requests, stats2.requests);
    }

    #[test]
    fn bounded_queue_rejects_overflow_deterministically() {
        let (mut net, den) = fixture();
        let requests = [
            ScheduledRequest::at(0, 3, 0),
            ScheduledRequest::at(1, 2, 0),
            ScheduledRequest::at(2, 2, 0),
            ScheduledRequest::at(3, 2, 1),
        ];
        let sched = Scheduler::new(den, 1).with_queue_bound(QueueBound {
            capacity: 1,
            policy: BackpressurePolicy::Reject,
        });
        let (served, stats) = sched.run(&mut net, &requests, None).unwrap();
        // Request 0 fills the queue slot; 1 and 2 bounce off it at the
        // same boundary. Request 3 arrives after the queue drained and is
        // accepted.
        assert_eq!(stats.rejected_ids, vec![1, 2]);
        assert!(stats.shed_ids.is_empty());
        assert_eq!(served.iter().map(|o| o.id).collect::<Vec<_>>(), vec![0, 3]);
        assert_eq!(stats.requests.len(), 2);
        // Rejected requests produce no stats rows.
        assert!(stats.request(1).is_none());
        // The surviving outputs are still bitwise solo samples.
        let solo = solo_references(&mut net, &den, &requests);
        assert_eq!(bits(&served[0].image), bits(&solo[0]));
        assert_eq!(bits(&served[1].image), bits(&solo[3]));
    }

    #[test]
    fn shed_policies_pick_deterministic_victims() {
        let (mut net, den) = fixture();
        let requests = [
            ScheduledRequest::at(0, 3, 0),
            ScheduledRequest::at(1, 2, 0),
            ScheduledRequest::at(2, 2, 0),
        ];
        // ShedOldest: each newcomer displaces the oldest queued request,
        // so only the last submission survives.
        let sched = Scheduler::new(den, 1).with_queue_bound(QueueBound {
            capacity: 1,
            policy: BackpressurePolicy::ShedOldest,
        });
        let (served, stats) = sched.run(&mut net, &requests, None).unwrap();
        assert_eq!(stats.shed_ids, vec![0, 1]);
        assert_eq!(served.iter().map(|o| o.id).collect::<Vec<_>>(), vec![2]);
        // ShedLargestBudget: the 3-step request is shed for the first
        // 2-step newcomer; the second 2-step newcomer ties and, being
        // newest, is itself shed without entering the queue.
        let sched = Scheduler::new(den, 1).with_queue_bound(QueueBound {
            capacity: 1,
            policy: BackpressurePolicy::ShedLargestBudget,
        });
        let (served, stats) = sched.run(&mut net, &requests, None).unwrap();
        assert_eq!(stats.shed_ids, vec![0, 2]);
        assert_eq!(served.iter().map(|o| o.id).collect::<Vec<_>>(), vec![1]);
        let (_, stats2) = sched.run(&mut net, &requests, None).unwrap();
        assert_eq!(stats.shed_ids, stats2.shed_ids);
    }

    #[test]
    fn queue_depth_timeline_tracks_pending_backlog() {
        let (mut net, den) = fixture();
        let requests = [
            ScheduledRequest::at(0, 2, 0),
            ScheduledRequest::at(1, 2, 0),
            ScheduledRequest::at(2, 2, 0),
        ];
        let (_, stats) = Scheduler::new(den, 1)
            .run(&mut net, &requests, None)
            .unwrap();
        // Capacity 1: two requests wait, then one, then none.
        assert_eq!(stats.queue_depth, vec![2, 2, 1, 1, 0, 0]);
        assert_eq!(stats.max_queue_depth(), 2);
        assert_eq!(stats.mean_queue_depth(), 1.0);
        assert_eq!(stats.throughput_per_step(), 0.5);
    }

    #[test]
    fn priority_aging_prevents_starvation_under_a_flood() {
        let (mut net, den) = fixture();
        // Capacity 1, steps 2: a fresh prio-1 flood request lands every
        // other step, so every boundary sees a higher class waiting.
        // Without aging the prio-0 request would wait out the entire
        // flood; with one boost per PRIORITY_AGE_STEPS queued steps it
        // ties the flood's class at age PRIORITY_AGE_STEPS and wins the
        // tie on arrival order.
        let mut requests = vec![ScheduledRequest::new(ServeRequest::new(0, 2), 0)];
        for i in 0..6u64 {
            requests.push(ScheduledRequest::new(
                ServeRequest::new(i + 1, 2).priority(1),
                2 * i as usize,
            ));
        }
        let solo = solo_references(&mut net, &den, &requests);
        let sched = Scheduler::new(den, 1).with_policy(AdmissionPolicy::Priority);
        let (served, stats) = sched.run(&mut net, &requests, None).unwrap();
        let aged = stats.request(0).unwrap();
        assert_eq!(
            aged.admitted_step, PRIORITY_AGE_STEPS,
            "one age boost must lift the prio-0 request over the flood"
        );
        // Starvation regression guard: the aged request beats the tail of
        // the flood instead of outwaiting all of it.
        let last_flood_admission = (1..=6)
            .map(|id| stats.request(id).unwrap().admitted_step)
            .max()
            .unwrap();
        assert!(
            aged.admitted_step < last_flood_admission,
            "aged request admitted at {} but flood tail at {last_flood_admission}",
            aged.admitted_step
        );
        // Aging is pure scheduling: outputs still match solo runs.
        for (out, single) in served.iter().zip(&solo) {
            assert_eq!(bits(&out.image), bits(single), "request {}", out.id);
        }
        let (_, stats2) = sched.run(&mut net, &requests, None).unwrap();
        assert_eq!(stats.requests, stats2.requests);
    }

    #[test]
    fn cost_aware_policies_degrade_to_fifo_under_the_noop_model() {
        let (mut net, den) = fixture();
        let requests = [
            ScheduledRequest::at(0, 3, 0),
            ScheduledRequest::at(1, 2, 0),
            ScheduledRequest::at(2, 4, 1),
            ScheduledRequest::at(3, 2, 2),
        ];
        let (fifo_out, fifo_stats) = Scheduler::new(den, 2)
            .run(&mut net, &requests, None)
            .unwrap();
        // With zero-cost estimates an energy budget can never be exceeded
        // and an occupancy projection never leaves the band: both new
        // policies must reproduce FIFO's schedule exactly, images and all.
        for policy in [
            AdmissionPolicy::EnergyCapped {
                budget_pj: 1,
                window: 1,
            },
            AdmissionPolicy::OccupancyTarget {
                lo_pct: 20,
                hi_pct: 60,
            },
        ] {
            let (out, stats) = Scheduler::new(den, 2)
                .with_policy(policy)
                .run(&mut net, &requests, None)
                .unwrap();
            assert_eq!(stats.requests, fifo_stats.requests, "{policy:?}");
            for (a, b) in out.iter().zip(&fifo_out) {
                assert_eq!(bits(&a.image), bits(&b.image), "{policy:?} request {}", a.id);
            }
            // And the accounting stays all-zero under the no-op model.
            assert_eq!(stats.total_energy_pj(), 0.0);
            assert_eq!(stats.peak_occupancy(), 0.0);
        }
    }

    #[test]
    fn energy_capped_policy_spends_less_than_fifo_at_bounded_latency() {
        use crate::cost::AccelCostModel;
        use sqdm_accel::PowerProfile;

        let (mut net, den) = fixture();
        let requests: Vec<ScheduledRequest> =
            (0..6).map(|i| ScheduledRequest::at(i, 4, 0)).collect();
        let solo = solo_references(&mut net, &den, &requests);
        let cost = CostModelConfig::Accel {
            profile: PowerProfile::Efficiency,
        };
        let (_, fifo) = Scheduler::new(den, 3)
            .with_cost_model(cost)
            .run(&mut net, &requests, None)
            .unwrap();
        // Budget 1.5 whole trajectories per 4-step window: the policy must
        // serialize admissions instead of packing the full batch.
        let unit = AccelCostModel::new(PowerProfile::Efficiency, 3)
            .stream_cost(1)
            .round_energy_pj;
        let budget_pj = (unit * 4.0 * 1.5) as u64;
        let capped_sched = Scheduler::new(den, 3)
            .with_policy(AdmissionPolicy::EnergyCapped {
                budget_pj,
                window: 4,
            })
            .with_cost_model(cost);
        let (served, capped) = capped_sched.run(&mut net, &requests, None).unwrap();
        assert!(
            capped.mean_occupancy() < fifo.mean_occupancy(),
            "capped {} vs fifo {}",
            capped.mean_occupancy(),
            fifo.mean_occupancy()
        );
        assert!(
            capped.energy_per_image_pj() < fifo.energy_per_image_pj(),
            "capped {} vs fifo {} pJ/image",
            capped.energy_per_image_pj(),
            fifo.energy_per_image_pj()
        );
        // Latency inflation from shedding concurrency stays bounded.
        let (cp99, fp99) = (capped.p99_latency().unwrap(), fifo.p99_latency().unwrap());
        assert!(cp99 <= fp99 * 4, "p99 {cp99} vs fifo {fp99}");
        // Costs are simulated: images stay bitwise solo.
        for (out, single) in served.iter().zip(&solo) {
            assert_eq!(bits(&out.image), bits(single), "request {}", out.id);
        }
        // Decisions are a pure function of the request set.
        let (_, capped2) = capped_sched.run(&mut net, &requests, None).unwrap();
        assert_eq!(capped.requests, capped2.requests);
        // A budget below one trajectory must not wedge the queue: the
        // stall guard admits one stream per window regardless.
        let (starved_out, _) = Scheduler::new(den, 3)
            .with_policy(AdmissionPolicy::EnergyCapped {
                budget_pj: 0,
                window: 4,
            })
            .with_cost_model(cost)
            .run(&mut net, &requests, None)
            .unwrap();
        assert_eq!(starved_out.len(), 6);
    }

    #[test]
    fn occupancy_target_policy_packs_into_the_band() {
        use crate::cost::AccelCostModel;
        use sqdm_accel::PowerProfile;

        let (mut net, den) = fixture();
        let requests: Vec<ScheduledRequest> =
            (0..6).map(|i| ScheduledRequest::at(i, 3, 0)).collect();
        let solo = solo_references(&mut net, &den, &requests);
        let cost = CostModelConfig::Accel {
            profile: PowerProfile::Balanced,
        };
        let (_, fifo) = Scheduler::new(den, 3)
            .with_cost_model(cost)
            .run(&mut net, &requests, None)
            .unwrap();
        // A band that fits one stream's share but not two: batches must
        // stay at size one even though FIFO would pack three.
        let share = AccelCostModel::new(PowerProfile::Balanced, 3)
            .stream_cost(1)
            .occupancy_share;
        let hi_pct = ((share * 1.5) * 100.0).ceil().min(100.0) as u8;
        let target_sched = Scheduler::new(den, 3)
            .with_policy(AdmissionPolicy::OccupancyTarget { lo_pct: 0, hi_pct })
            .with_cost_model(cost);
        let (served, target) = target_sched.run(&mut net, &requests, None).unwrap();
        assert!(
            target.peak_occupancy() < fifo.peak_occupancy(),
            "target peak {} vs fifo peak {}",
            target.peak_occupancy(),
            fifo.peak_occupancy()
        );
        assert!(
            target.peak_occupancy() <= f64::from(hi_pct) / 100.0 + 1e-9,
            "peak {} left the [0, {hi_pct}%] band",
            target.peak_occupancy()
        );
        for (out, single) in served.iter().zip(&solo) {
            assert_eq!(bits(&out.image), bits(single), "request {}", out.id);
        }
        let (_, target2) = target_sched.run(&mut net, &requests, None).unwrap();
        assert_eq!(target.requests, target2.requests);
    }

    #[test]
    fn scheduler_round_accounting_timeline_matches_rounds() {
        use sqdm_accel::PowerProfile;

        let (mut net, den) = fixture();
        let requests = [ScheduledRequest::at(0, 3, 0), ScheduledRequest::at(1, 2, 1)];
        let (_, stats) = Scheduler::new(den, 2)
            .with_cost_model(CostModelConfig::Accel {
                profile: PowerProfile::Performance,
            })
            .run(&mut net, &requests, None)
            .unwrap();
        assert_eq!(stats.round_energy_pj.len(), stats.rounds);
        assert_eq!(stats.round_occupancy.len(), stats.rounds);
        assert!(stats.round_energy_pj.iter().all(|&e| e > 0.0));
        assert!(stats
            .round_occupancy
            .iter()
            .all(|&o| o > 0.0 && o <= 1.0));
        assert!(stats.energy_per_image_pj() > 0.0);
        assert!(stats.peak_occupancy() >= stats.mean_occupancy());
    }
}
