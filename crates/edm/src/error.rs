//! Error type for the EDM crate.

use std::fmt;

/// Error produced by model construction, training, sampling or evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum EdmError {
    /// Invalid configuration.
    Config {
        /// Explanation of the inconsistency.
        reason: String,
    },
    /// An operation required state that was not present (e.g. backward
    /// before forward).
    MissingState {
        /// What was missing.
        what: &'static str,
    },
    /// A serving surface refused new work because its bounded pending
    /// queue is full (the daemon maps this to HTTP 429).
    Overloaded {
        /// Which queue overflowed and with what bound.
        reason: String,
    },
    /// A wire peer speaks a protocol revision newer than this build
    /// understands, so replies cannot be interpreted safely.
    ProtocolMismatch {
        /// The newest `proto_version` this build understands.
        expected: u32,
        /// The `proto_version` the peer reported.
        got: u32,
    },
    /// An underlying tensor kernel failed.
    Tensor(sqdm_tensor::TensorError),
    /// An underlying layer failed.
    Nn(sqdm_nn::NnError),
    /// An underlying quantization operation failed.
    Quant(sqdm_quant::QuantError),
}

impl fmt::Display for EdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdmError::Config { reason } => write!(f, "configuration error: {reason}"),
            EdmError::MissingState { what } => write!(f, "missing state: {what}"),
            EdmError::Overloaded { reason } => write!(f, "overloaded: {reason}"),
            EdmError::ProtocolMismatch { expected, got } => write!(
                f,
                "protocol mismatch: peer speaks proto_version {got} but this \
                 build understands at most {expected}; upgrade the client"
            ),
            EdmError::Tensor(e) => write!(f, "tensor error: {e}"),
            EdmError::Nn(e) => write!(f, "layer error: {e}"),
            EdmError::Quant(e) => write!(f, "quantization error: {e}"),
        }
    }
}

impl std::error::Error for EdmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EdmError::Tensor(e) => Some(e),
            EdmError::Nn(e) => Some(e),
            EdmError::Quant(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sqdm_tensor::TensorError> for EdmError {
    fn from(e: sqdm_tensor::TensorError) -> Self {
        EdmError::Tensor(e)
    }
}

impl From<sqdm_nn::NnError> for EdmError {
    fn from(e: sqdm_nn::NnError) -> Self {
        EdmError::Nn(e)
    }
}

impl From<sqdm_quant::QuantError> for EdmError {
    fn from(e: sqdm_quant::QuantError) -> Self {
        EdmError::Quant(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, EdmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = EdmError::Config {
            reason: "bad".into(),
        };
        assert!(e.to_string().contains("bad"));
        let e: EdmError = sqdm_tensor::TensorError::ReshapeMismatch { from: 1, to: 2 }.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
