//! Wire protocol shared by the `sqdmd` daemon and the `sqdmctl` client.
//!
//! Everything that crosses the daemon's TCP boundary is defined here — the
//! typed request/response bodies of every endpoint, the JSON encoding that
//! carries them, and the minimal HTTP/1.1 client the CLI and the end-to-end
//! tests speak. Client and server both compile against these types, so the
//! two sides cannot drift: adding a field is one edit, visible to both.
//!
//! # Endpoints
//!
//! | Method | Path              | Request body      | Response body       |
//! |--------|-------------------|-------------------|---------------------|
//! | POST   | `/v1/models`      | [`RegisterModel`] | [`ModelRegistered`] |
//! | POST   | `/v1/submit`      | [`Submit`]        | [`Submitted`]       |
//! | GET    | `/v1/status/{id}` | —                 | [`StatusReply`]     |
//! | GET    | `/v1/stats`       | —                 | [`StatsReply`]      |
//! | POST   | `/v1/drain`       | —                 | [`DrainReply`]      |
//!
//! Errors come back as [`ErrorReply`] with a 4xx/5xx status code.
//!
//! # Bitwise image transfer
//!
//! A finished sample crosses the wire as [`ImagePayload`]: the `f32` pixels
//! are shipped as their IEEE-754 bit patterns (`u32`), so the bytes a
//! client reassembles are **bit-for-bit** the bytes the serving contract
//! pins to solo [`crate::sample`] — JSON float formatting can never round
//! them.

use serde::{Deserialize, Serialize};

use crate::error::EdmError;
use crate::serve::TenantRollup;

/// Version of the wire protocol spoken by this build. Carried in every
/// reply's `proto_version` field so clients can detect a daemon that is
/// newer (or older) than the types they compiled against instead of
/// misparsing it. History: 1 = PR 8 initial protocol; 2 = `Submit.priority`,
/// `StatsReply.rejected`, HTTP 429 overload; 3 = this revision (per-model
/// energy/occupancy stats, daemon `--energy-budget`).
pub const PROTO_VERSION: u32 = 3;

/// Checks a reply's `proto_version` against this build.
///
/// Older peers are fine — every revision so far only added fields, and
/// absent fields decode as `None` — but a **newer** peer may be sending
/// semantics this build cannot interpret, so that is a typed error
/// instead of a silent mis-parse.
///
/// # Errors
///
/// Returns [`EdmError::ProtocolMismatch`] when `got > PROTO_VERSION`.
pub fn check_proto_version(got: u32) -> Result<(), EdmError> {
    if got > PROTO_VERSION {
        return Err(EdmError::ProtocolMismatch {
            expected: PROTO_VERSION,
            got,
        });
    }
    Ok(())
}

/// Body of `POST /v1/models`: make a model resident.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisterModel {
    /// Human-readable model name, echoed by `/v1/stats`.
    pub name: String,
    /// Architecture preset: `"micro"` or `"default"`
    /// (see [`crate::UNetConfig`]).
    pub preset: String,
    /// Precision assignment: `"fp32"`, `"int8"` (execution mode from the
    /// daemon's `SQDM_EXEC` default), `"int8-fakequant"`, or
    /// `"int8-native"`.
    pub precision: String,
    /// Seed for the model's weight initialization. The same
    /// `(preset, seed)` pair always yields bitwise-identical weights, so a
    /// test can rebuild the exact resident model in process.
    pub seed: u64,
}

/// Response of `POST /v1/models`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelRegistered {
    /// The dense model id assigned by the registry (submission key).
    pub model: usize,
    /// The registered name, echoed back.
    pub name: String,
    /// The resolved precision label (e.g. `"int8-native"`), after the
    /// daemon applied its `SQDM_EXEC` default to a bare `"int8"`.
    pub precision: String,
    /// Protocol revision of the daemon ([`PROTO_VERSION`]).
    pub proto_version: u32,
}

/// Body of `POST /v1/submit`: one generation request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Submit {
    /// Target model id, as returned by `/v1/models`.
    pub model: usize,
    /// Caller-chosen request id; globally unique for the daemon's
    /// lifetime. A duplicate is rejected with HTTP 409.
    pub id: u64,
    /// Seed of the request's private noise stream.
    pub seed: u64,
    /// Step budget (must be at least 2; see
    /// [`crate::serve::ServeRequest::steps`]).
    pub steps: usize,
    /// Submitting tenant (admission fair-share and stats rollups).
    pub tenant: u32,
    /// Static priority class; higher wins under the `Priority` admission
    /// policy, ignored by the others (see
    /// [`crate::serve::ServeRequest::priority`]).
    pub priority: u32,
}

/// Response of `POST /v1/submit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Submitted {
    /// The accepted request id.
    pub id: u64,
    /// The model it was routed to.
    pub model: usize,
    /// Virtual step at which the request entered the queue.
    pub arrival_step: usize,
    /// Protocol revision of the daemon ([`PROTO_VERSION`]).
    pub proto_version: u32,
}

/// A finished sample in bitwise-exact transport form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImagePayload {
    /// Tensor dimensions, `[1, C, S, S]`.
    pub dims: Vec<usize>,
    /// IEEE-754 bit patterns of the `f32` pixels, row-major.
    pub bits: Vec<u32>,
}

/// Response of `GET /v1/status/{id}`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatusReply {
    /// The request id.
    pub id: u64,
    /// Lifecycle state: `"queued"`, `"running"`, `"done"`, or `"failed"`.
    pub state: String,
    /// The model serving the request.
    pub model: usize,
    /// The generated image; present only in the `"done"` state.
    pub image: Option<ImagePayload>,
    /// The failure reason; present only in the `"failed"` state.
    pub error: Option<String>,
    /// Protocol revision of the daemon ([`PROTO_VERSION`]).
    pub proto_version: u32,
}

/// Per-model serving statistics inside [`StatsReply`].
///
/// All aggregates cover **completed** requests only; `Option` fields are
/// absent (`null` on the wire) until the first request or round completes,
/// so the JSON never has to encode a NaN.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelStatsWire {
    /// The model id.
    pub model: usize,
    /// The registered model name.
    pub name: String,
    /// The resolved precision label the model serves with.
    pub precision: String,
    /// Requests completed so far.
    pub completed: usize,
    /// Batched Heun rounds this model has executed.
    pub rounds: usize,
    /// Mean end-to-end latency in virtual steps.
    pub mean_latency: Option<f64>,
    /// Nearest-rank p50 of per-request latency, virtual steps.
    pub p50_latency: Option<usize>,
    /// Nearest-rank p95 of per-request latency, virtual steps.
    pub p95_latency: Option<usize>,
    /// Nearest-rank p99 of per-request latency, virtual steps.
    pub p99_latency: Option<usize>,
    /// Mean in-flight batch size over executed rounds.
    pub mean_batch_occupancy: Option<f64>,
    /// Simulated energy per completed image in pJ, under the daemon's
    /// cost model; absent until the first request completes, or always
    /// absent under the no-op cost model's zero accounting.
    pub energy_per_image_pj: Option<f64>,
    /// Mean simulated PE-array occupancy over executed rounds, `0.0..=1.0`.
    pub mean_occupancy: Option<f64>,
    /// Peak simulated PE-array occupancy over executed rounds.
    pub peak_occupancy: Option<f64>,
}

/// Response of `GET /v1/stats`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsReply {
    /// The scheduler's virtual clock (one tick per outer denoise round).
    pub clock: usize,
    /// Total rounds executed across all models.
    pub rounds: usize,
    /// Whether `/v1/drain` has been accepted (new submits are rejected).
    pub draining: bool,
    /// Requests queued or in flight right now.
    pub active_requests: usize,
    /// Submissions refused with HTTP 429 because a model's bounded
    /// pending queue was full, over the daemon's lifetime.
    pub rejected: u64,
    /// Protocol revision of the daemon ([`PROTO_VERSION`]).
    pub proto_version: u32,
    /// Per-model statistics, indexed by model id.
    pub models: Vec<ModelStatsWire>,
    /// Per-tenant rollups across all models, ascending by tenant id
    /// (completed requests only, so the means are always finite).
    pub tenants: Vec<TenantRollup>,
}

/// Response of `POST /v1/drain`. The reply is sent only after every
/// request that was queued or in flight when the drain arrived has
/// completed its remaining denoise rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DrainReply {
    /// Requests completed over the daemon's lifetime.
    pub completed: usize,
    /// Total rounds executed.
    pub rounds: usize,
    /// Virtual clock at drain completion.
    pub final_step: usize,
    /// Protocol revision of the daemon ([`PROTO_VERSION`]).
    pub proto_version: u32,
}

/// Error body attached to every non-2xx response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorReply {
    /// Human-readable description of what was rejected and why.
    pub error: String,
}

pub mod json {
    //! JSON encoding of the wire types, built on the vendored serde shim:
    //! a complete [`serde::Serializer`] that writes compact JSON text, and
    //! a recursive-descent parser producing the shim's
    //! [`serde::de::Value`] tree for derived `Deserialize` impls.
    //!
    //! Conventions match the derive macros: structs are objects keyed by
    //! field name, unit enum variants are strings, data-carrying variants
    //! are single-entry objects, `Option::None` is `null`. Non-finite
    //! floats serialize as `null` (JSON has no NaN), which round-trips
    //! into `Option<f64>` fields as `None`.

    use serde::de::{self, Value};
    use serde::ser::{self, Serialize};
    use std::fmt;

    /// Maximum nesting depth the parser accepts; adversarial bodies made
    /// of thousands of `[` must fail cleanly instead of overflowing the
    /// connection thread's stack.
    const MAX_DEPTH: usize = 128;

    /// JSON encode/decode failure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct JsonError(pub String);

    impl fmt::Display for JsonError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "json error: {}", self.0)
        }
    }

    impl std::error::Error for JsonError {}

    impl ser::Error for JsonError {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            JsonError(msg.to_string())
        }
    }

    impl de::Error for JsonError {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            JsonError(msg.to_string())
        }
    }

    /// Serializes any `Serialize` type to a compact JSON string.
    ///
    /// # Errors
    ///
    /// Propagates errors raised by the type's `Serialize` impl (the
    /// writer itself is infallible).
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, JsonError> {
        let mut ser = Writer { out: String::new() };
        value.serialize(&mut ser)?;
        Ok(ser.out)
    }

    /// Parses JSON text and reconstructs `T` through its derived
    /// [`serde::Deserialize`] impl.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] for malformed JSON (including trailing
    /// garbage and nesting beyond the parser's depth guard) or a value
    /// tree that does
    /// not match `T`.
    pub fn from_str<'de, T: de::Deserialize<'de>>(input: &str) -> Result<T, JsonError> {
        let value = parse(input)?;
        T::from_value(&value).map_err(JsonError)
    }

    /// Parses JSON text into the shim's self-describing [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a position-annotated message for any
    /// syntax error.
    pub fn parse(input: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    // -----------------------------------------------------------------
    // Writer: serde::Serializer -> compact JSON text.
    // -----------------------------------------------------------------

    struct Writer {
        out: String,
    }

    impl Writer {
        fn push_escaped(&mut self, s: &str) {
            self.out.push('"');
            for c in s.chars() {
                match c {
                    '"' => self.out.push_str("\\\""),
                    '\\' => self.out.push_str("\\\\"),
                    '\n' => self.out.push_str("\\n"),
                    '\r' => self.out.push_str("\\r"),
                    '\t' => self.out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        self.out.push_str(&format!("\\u{:04x}", c as u32));
                    }
                    c => self.out.push(c),
                }
            }
            self.out.push('"');
        }

        fn push_f64(&mut self, v: f64) {
            if v.is_finite() {
                // `{:?}` keeps a decimal point or exponent, so the value
                // re-parses as a float rather than an integer.
                self.out.push_str(&format!("{v:?}"));
            } else {
                // JSON has no NaN/Infinity; `null` round-trips into
                // `Option<f64>` as `None`.
                self.out.push_str("null");
            }
        }
    }

    /// Compound state shared by every sequence/map/struct serializer.
    pub struct Compound<'a> {
        w: &'a mut Writer,
        /// Whether at least one element has been written (comma control).
        first: bool,
        /// Text appended by `end()` (`]`, `}`, or `}}` for variants).
        close: &'static str,
    }

    impl Compound<'_> {
        fn sep(&mut self) {
            if self.first {
                self.first = false;
            } else {
                self.w.out.push(',');
            }
        }
    }

    macro_rules! fwd_int {
        ($($m:ident: $t:ty),* $(,)?) => {$(
            fn $m(self, v: $t) -> Result<(), JsonError> {
                self.out.push_str(&v.to_string());
                Ok(())
            }
        )*};
    }

    impl<'a> ser::Serializer for &'a mut Writer {
        type Ok = ();
        type Error = JsonError;
        type SerializeSeq = Compound<'a>;
        type SerializeTuple = Compound<'a>;
        type SerializeTupleStruct = Compound<'a>;
        type SerializeTupleVariant = Compound<'a>;
        type SerializeMap = Compound<'a>;
        type SerializeStruct = Compound<'a>;
        type SerializeStructVariant = Compound<'a>;

        fwd_int!(
            serialize_bool: bool, serialize_i8: i8, serialize_i16: i16,
            serialize_i32: i32, serialize_i64: i64, serialize_u8: u8,
            serialize_u16: u16, serialize_u32: u32, serialize_u64: u64,
        );

        fn serialize_f32(self, v: f32) -> Result<(), JsonError> {
            self.push_f64(f64::from(v));
            Ok(())
        }

        fn serialize_f64(self, v: f64) -> Result<(), JsonError> {
            self.push_f64(v);
            Ok(())
        }

        fn serialize_char(self, v: char) -> Result<(), JsonError> {
            self.push_escaped(&v.to_string());
            Ok(())
        }

        fn serialize_str(self, v: &str) -> Result<(), JsonError> {
            self.push_escaped(v);
            Ok(())
        }

        fn serialize_bytes(self, v: &[u8]) -> Result<(), JsonError> {
            let mut seq = ser::Serializer::serialize_seq(self, Some(v.len()))?;
            for b in v {
                ser::SerializeSeq::serialize_element(&mut seq, b)?;
            }
            ser::SerializeSeq::end(seq)
        }

        fn serialize_none(self) -> Result<(), JsonError> {
            self.out.push_str("null");
            Ok(())
        }

        fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), JsonError> {
            value.serialize(self)
        }

        fn serialize_unit(self) -> Result<(), JsonError> {
            self.out.push_str("null");
            Ok(())
        }

        fn serialize_unit_struct(self, _name: &'static str) -> Result<(), JsonError> {
            self.out.push_str("null");
            Ok(())
        }

        fn serialize_unit_variant(
            self,
            _name: &'static str,
            _variant_index: u32,
            variant: &'static str,
        ) -> Result<(), JsonError> {
            self.push_escaped(variant);
            Ok(())
        }

        fn serialize_newtype_struct<T: Serialize + ?Sized>(
            self,
            _name: &'static str,
            value: &T,
        ) -> Result<(), JsonError> {
            value.serialize(self)
        }

        fn serialize_newtype_variant<T: Serialize + ?Sized>(
            self,
            _name: &'static str,
            _variant_index: u32,
            variant: &'static str,
            value: &T,
        ) -> Result<(), JsonError> {
            self.out.push('{');
            self.push_escaped(variant);
            self.out.push(':');
            value.serialize(&mut *self)?;
            self.out.push('}');
            Ok(())
        }

        fn serialize_seq(self, _len: Option<usize>) -> Result<Compound<'a>, JsonError> {
            self.out.push('[');
            Ok(Compound {
                w: self,
                first: true,
                close: "]",
            })
        }

        fn serialize_tuple(self, len: usize) -> Result<Compound<'a>, JsonError> {
            ser::Serializer::serialize_seq(self, Some(len))
        }

        fn serialize_tuple_struct(
            self,
            _name: &'static str,
            len: usize,
        ) -> Result<Compound<'a>, JsonError> {
            ser::Serializer::serialize_seq(self, Some(len))
        }

        fn serialize_tuple_variant(
            self,
            _name: &'static str,
            _variant_index: u32,
            variant: &'static str,
            _len: usize,
        ) -> Result<Compound<'a>, JsonError> {
            self.out.push('{');
            self.push_escaped(variant);
            self.out.push_str(":[");
            Ok(Compound {
                w: self,
                first: true,
                close: "]}",
            })
        }

        fn serialize_map(self, _len: Option<usize>) -> Result<Compound<'a>, JsonError> {
            self.out.push('{');
            Ok(Compound {
                w: self,
                first: true,
                close: "}",
            })
        }

        fn serialize_struct(
            self,
            _name: &'static str,
            _len: usize,
        ) -> Result<Compound<'a>, JsonError> {
            ser::Serializer::serialize_map(self, None)
        }

        fn serialize_struct_variant(
            self,
            _name: &'static str,
            _variant_index: u32,
            variant: &'static str,
            _len: usize,
        ) -> Result<Compound<'a>, JsonError> {
            self.out.push('{');
            self.push_escaped(variant);
            self.out.push_str(":{");
            Ok(Compound {
                w: self,
                first: true,
                close: "}}",
            })
        }
    }

    impl ser::SerializeSeq for Compound<'_> {
        type Ok = ();
        type Error = JsonError;

        fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
            self.sep();
            value.serialize(&mut *self.w)
        }

        fn end(self) -> Result<(), JsonError> {
            self.w.out.push_str(self.close);
            Ok(())
        }
    }

    impl ser::SerializeTuple for Compound<'_> {
        type Ok = ();
        type Error = JsonError;

        fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
            ser::SerializeSeq::serialize_element(self, value)
        }

        fn end(self) -> Result<(), JsonError> {
            ser::SerializeSeq::end(self)
        }
    }

    impl ser::SerializeTupleStruct for Compound<'_> {
        type Ok = ();
        type Error = JsonError;

        fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
            ser::SerializeSeq::serialize_element(self, value)
        }

        fn end(self) -> Result<(), JsonError> {
            ser::SerializeSeq::end(self)
        }
    }

    impl ser::SerializeTupleVariant for Compound<'_> {
        type Ok = ();
        type Error = JsonError;

        fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
            ser::SerializeSeq::serialize_element(self, value)
        }

        fn end(self) -> Result<(), JsonError> {
            ser::SerializeSeq::end(self)
        }
    }

    impl ser::SerializeMap for Compound<'_> {
        type Ok = ();
        type Error = JsonError;

        fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), JsonError> {
            self.sep();
            // JSON object keys must be strings: serialize the key into a
            // scratch writer and quote it if the type produced a bare
            // scalar (e.g. an integer map key).
            let mut scratch = Writer { out: String::new() };
            key.serialize(&mut scratch)?;
            if scratch.out.starts_with('"') {
                self.w.out.push_str(&scratch.out);
            } else {
                self.w.push_escaped(&scratch.out);
            }
            self.w.out.push(':');
            Ok(())
        }

        fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
            value.serialize(&mut *self.w)
        }

        fn end(self) -> Result<(), JsonError> {
            self.w.out.push_str(self.close);
            Ok(())
        }
    }

    impl ser::SerializeStruct for Compound<'_> {
        type Ok = ();
        type Error = JsonError;

        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), JsonError> {
            self.sep();
            self.w.push_escaped(key);
            self.w.out.push(':');
            value.serialize(&mut *self.w)
        }

        fn end(self) -> Result<(), JsonError> {
            self.w.out.push_str(self.close);
            Ok(())
        }
    }

    impl ser::SerializeStructVariant for Compound<'_> {
        type Ok = ();
        type Error = JsonError;

        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), JsonError> {
            ser::SerializeStruct::serialize_field(self, key, value)
        }

        fn end(self) -> Result<(), JsonError> {
            self.w.out.push_str(self.close);
            Ok(())
        }
    }

    // -----------------------------------------------------------------
    // Parser: JSON text -> serde::de::Value.
    // -----------------------------------------------------------------

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn err(&self, msg: &str) -> JsonError {
            JsonError(format!("{msg} at byte {}", self.pos))
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), JsonError> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(self.err(&format!("expected `{}`", b as char)))
            }
        }

        fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(value)
            } else {
                Err(self.err(&format!("expected `{word}`")))
            }
        }

        fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
            if depth > MAX_DEPTH {
                return Err(self.err("nesting too deep"));
            }
            match self.peek() {
                Some(b'{') => self.object(depth),
                Some(b'[') => self.array(depth),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Unit),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
                None => Err(self.err("unexpected end of input")),
            }
        }

        fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
            self.expect(b'{')?;
            let mut entries = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let value = self.value(depth + 1)?;
                entries.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    _ => return Err(self.err("expected `,` or `}` in object")),
                }
            }
        }

        fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value(depth + 1)?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    _ => return Err(self.err("expected `,` or `]` in array")),
                }
            }
        }

        fn hex4(&mut self) -> Result<u32, JsonError> {
            if self.pos + 4 > self.bytes.len() {
                return Err(self.err("truncated \\u escape"));
            }
            let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                .map_err(|_| self.err("non-ascii \\u escape"))?;
            let code =
                u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
            self.pos += 4;
            Ok(code)
        }

        fn string(&mut self) -> Result<String, JsonError> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err(self.err("unterminated string")),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => {
                                out.push('"');
                                self.pos += 1;
                            }
                            Some(b'\\') => {
                                out.push('\\');
                                self.pos += 1;
                            }
                            Some(b'/') => {
                                out.push('/');
                                self.pos += 1;
                            }
                            Some(b'b') => {
                                out.push('\u{8}');
                                self.pos += 1;
                            }
                            Some(b'f') => {
                                out.push('\u{c}');
                                self.pos += 1;
                            }
                            Some(b'n') => {
                                out.push('\n');
                                self.pos += 1;
                            }
                            Some(b'r') => {
                                out.push('\r');
                                self.pos += 1;
                            }
                            Some(b't') => {
                                out.push('\t');
                                self.pos += 1;
                            }
                            Some(b'u') => {
                                self.pos += 1;
                                let hi = self.hex4()?;
                                let code = if (0xD800..0xDC00).contains(&hi) {
                                    // Surrogate pair: require the low half.
                                    if self.bytes[self.pos..].starts_with(b"\\u") {
                                        self.pos += 2;
                                        let lo = self.hex4()?;
                                        if !(0xDC00..0xE000).contains(&lo) {
                                            return Err(self.err("invalid low surrogate"));
                                        }
                                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                    } else {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                } else {
                                    hi
                                };
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("invalid \\u code point"))?,
                                );
                            }
                            _ => return Err(self.err("invalid escape sequence")),
                        }
                    }
                    Some(_) => {
                        // Consume one complete UTF-8 scalar (input is a
                        // &str, so boundaries are valid).
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| self.err("invalid utf-8"))?;
                        let c = rest.chars().next().ok_or_else(|| self.err("empty char"))?;
                        if (c as u32) < 0x20 {
                            return Err(self.err("unescaped control character"));
                        }
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, JsonError> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            let mut float = false;
            while let Some(c) = self.peek() {
                match c {
                    b'0'..=b'9' => self.pos += 1,
                    b'.' | b'e' | b'E' | b'+' | b'-' => {
                        float = true;
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| self.err("invalid number"))?;
            if float {
                text.parse::<f64>()
                    .map(Value::F64)
                    .map_err(|_| self.err("invalid number"))
            } else if text.starts_with('-') {
                // Integral: prefer exact integer values so u64/usize
                // round-trip losslessly (f64 would truncate above 2^53).
                text.parse::<i64>()
                    .map(Value::I64)
                    .or_else(|_| text.parse::<f64>().map(Value::F64))
                    .map_err(|_| self.err("invalid number"))
            } else {
                text.parse::<u64>()
                    .map(Value::U64)
                    .or_else(|_| text.parse::<f64>().map(Value::F64))
                    .map_err(|_| self.err("invalid number"))
            }
        }
    }
}

pub mod client {
    //! Minimal blocking HTTP/1.1 client over [`std::net::TcpStream`]:
    //! exactly what `sqdmctl` and the socket-level test suites need to
    //! drive the daemon. One request per connection (`Connection: close`),
    //! with a hard I/O deadline so a wedged server fails the caller fast
    //! instead of hanging it.

    use std::io::{Read, Write};
    use std::net::{SocketAddr, TcpStream};
    use std::time::Duration;

    /// A parsed HTTP response: status code plus body text.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Response {
        /// Numeric status code from the status line.
        pub status: u16,
        /// The response body (JSON for every daemon endpoint).
        pub body: String,
    }

    impl Response {
        /// Whether the status code is in the 2xx range.
        pub fn is_success(&self) -> bool {
            (200..300).contains(&self.status)
        }
    }

    /// Sends one HTTP request and reads the full response.
    ///
    /// `body = None` sends no payload (GET/POST without a body);
    /// `Some(json)` attaches it with `Content-Type: application/json`.
    ///
    /// # Errors
    ///
    /// Propagates connect/read/write failures and timeouts, and rejects
    /// responses that are not parseable HTTP/1.1.
    pub fn request(
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: Option<&str>,
        timeout: Duration,
    ) -> std::io::Result<Response> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        send_request(&stream, addr, method, path, body)?;
        read_response(stream)
    }

    /// Writes the request head and body to an open stream.
    fn send_request(
        mut stream: &TcpStream,
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<()> {
        let payload = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            payload.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(payload.as_bytes())?;
        stream.flush()
    }

    /// Reads a `Connection: close` response to EOF and splits it into
    /// status and body.
    fn read_response(mut stream: TcpStream) -> std::io::Result<Response> {
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw)?;
        let text = String::from_utf8_lossy(&raw).into_owned();
        let header_end = text.find("\r\n\r\n").ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "response missing header terminator",
            )
        })?;
        let status = text
            .strip_prefix("HTTP/1.1 ")
            .or_else(|| text.strip_prefix("HTTP/1.0 "))
            .and_then(|rest| rest.get(..3))
            .and_then(|code| code.parse::<u16>().ok())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
            })?;
        Ok(Response {
            status,
            body: text[header_end + 4..].to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::json::{from_str, parse, to_string, JsonError};
    use super::*;
    use serde::de::Value;

    #[test]
    fn wire_types_round_trip_through_json() {
        let reg = RegisterModel {
            name: "edm-micro".into(),
            preset: "micro".into(),
            precision: "int8-native".into(),
            seed: 31,
        };
        let text = to_string(&reg).unwrap();
        assert_eq!(from_str::<RegisterModel>(&text).unwrap(), reg);

        let sub = Submit {
            model: 0,
            id: 42,
            seed: 7,
            steps: 3,
            tenant: 2,
            priority: 5,
        };
        let text = to_string(&sub).unwrap();
        assert!(text.contains("\"id\":42"), "{text}");
        assert!(text.contains("\"priority\":5"), "{text}");
        assert_eq!(from_str::<Submit>(&text).unwrap(), sub);

        let status = StatusReply {
            id: 42,
            state: "done".into(),
            model: 0,
            image: Some(ImagePayload {
                dims: vec![1, 1, 8, 8],
                bits: vec![0x3f80_0000, 0xbf80_0000, 0x7fc0_0000],
            }),
            error: None,
            proto_version: PROTO_VERSION,
        };
        let text = to_string(&status).unwrap();
        let back: StatusReply = from_str(&text).unwrap();
        assert_eq!(back, status);
        // The image crossed as exact bit patterns, NaN included.
        assert_eq!(back.image.unwrap().bits[2], 0x7fc0_0000);
    }

    #[test]
    fn stats_reply_round_trips_with_absent_aggregates() {
        let stats = StatsReply {
            clock: 9,
            rounds: 9,
            draining: false,
            active_requests: 1,
            rejected: 3,
            proto_version: PROTO_VERSION,
            models: vec![ModelStatsWire {
                model: 0,
                name: "m".into(),
                precision: "fp32".into(),
                completed: 0,
                rounds: 0,
                mean_latency: None,
                p50_latency: None,
                p95_latency: None,
                p99_latency: None,
                mean_batch_occupancy: None,
                energy_per_image_pj: None,
                mean_occupancy: None,
                peak_occupancy: None,
            }],
            tenants: vec![],
        };
        let text = to_string(&stats).unwrap();
        assert!(text.contains("\"mean_latency\":null"), "{text}");
        assert_eq!(from_str::<StatsReply>(&text).unwrap(), stats);
    }

    #[test]
    fn proto_version_skew_is_a_typed_error() {
        // Same or older peers are accepted...
        assert!(check_proto_version(PROTO_VERSION).is_ok());
        assert!(check_proto_version(1).is_ok());
        // ...but a reply from a future daemon is a typed error, not a
        // silent mis-parse of fields this build has never heard of.
        let older_build_reply = format!(
            "{{\"clock\":1,\"rounds\":1,\"draining\":false,\"active_requests\":0,\
             \"rejected\":0,\"proto_version\":{},\"models\":[],\"tenants\":[]}}",
            PROTO_VERSION + 96
        );
        let reply: StatsReply = from_str(&older_build_reply).unwrap();
        match check_proto_version(reply.proto_version) {
            Err(EdmError::ProtocolMismatch { expected, got }) => {
                assert_eq!(expected, PROTO_VERSION);
                assert_eq!(got, PROTO_VERSION + 96);
            }
            other => panic!("expected ProtocolMismatch, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        let text = to_string(&f64::NAN).unwrap();
        assert_eq!(text, "null");
        let text = to_string(&vec![1.5f64, f64::INFINITY]).unwrap();
        assert_eq!(text, "[1.5,null]");
        // And null deserializes into an absent Option.
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<f64>>("1.5").unwrap(), Some(1.5));
    }

    #[test]
    fn parser_handles_escapes_numbers_and_nesting() {
        let v = parse(r#"{"s":"a\"b\\c\n\u0041\ud83d\ude00","n":[-3,2.5,18446744073709551615]}"#)
            .unwrap();
        let map = v.as_map().unwrap();
        assert_eq!(map[0].1, Value::Str("a\"b\\c\nA😀".into()));
        let seq = map[1].1.as_seq().unwrap();
        assert_eq!(seq[0], Value::I64(-3));
        assert_eq!(seq[1], Value::F64(2.5));
        assert_eq!(seq[2], Value::U64(u64::MAX));
        // Escaped strings survive a full round trip.
        let s = "quote \" slash \\ newline \n tab \t unicode 😀";
        let text = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&text).unwrap(), s);
    }

    #[test]
    fn parser_rejects_malformed_input_cleanly() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\":}",
            "{\"a\" 1}",
            "[1,]",
            "[1 2]",
            "\"unterminated",
            "nul",
            "01a",
            "{\"a\":1}trailing",
            "\"bad \\q escape\"",
            "\"unpaired \\ud83d\"",
            "-",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
        // Deep nesting fails instead of overflowing the stack.
        let deep = "[".repeat(100_000);
        assert!(matches!(parse(&deep), Err(JsonError(msg)) if msg.contains("nesting")));
    }

    #[test]
    fn integer_keys_become_string_keys() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert(3u32, "x".to_string());
        assert_eq!(to_string(&m).unwrap(), "{\"3\":\"x\"}");
    }

    #[test]
    fn serve_stats_serialize_through_the_wire_json() {
        // The library stats types (used inside StatsReply) must pass
        // through the JSON writer unchanged.
        let rollup = TenantRollup {
            tenant: 4,
            requests: 2,
            total_steps: 5,
            mean_latency: 2.5,
            mean_queue_delay: 0.0,
        };
        let text = to_string(&rollup).unwrap();
        let back: TenantRollup = from_str(&text).unwrap();
        assert_eq!(back, rollup);
    }
}
