//! EDM noise schedule and preconditioning (Karras et al., NeurIPS 2022).
//!
//! The denoiser is parameterized as
//! `D(x, σ) = c_skip(σ)·x + c_out(σ)·F(c_in(σ)·x, c_noise(σ))`
//! and sampling walks the Karras sigma grid
//! `σ_i = (σ_max^{1/ρ} + i/(N-1)·(σ_min^{1/ρ} − σ_max^{1/ρ}))^ρ`.

use serde::{Deserialize, Serialize};
use sqdm_tensor::Rng;

/// Hyper-parameters of the EDM formulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdmSchedule {
    /// Data standard deviation (0.5 for images scaled to `[-1, 1]`).
    pub sigma_data: f32,
    /// Smallest sampling noise level.
    pub sigma_min: f32,
    /// Largest sampling noise level.
    pub sigma_max: f32,
    /// Karras grid curvature.
    pub rho: f32,
    /// Mean of `ln σ` for training noise draws.
    pub p_mean: f32,
    /// Std of `ln σ` for training noise draws.
    pub p_std: f32,
}

impl Default for EdmSchedule {
    /// The EDM paper's image defaults.
    fn default() -> Self {
        EdmSchedule {
            sigma_data: 0.5,
            sigma_min: 0.002,
            sigma_max: 80.0,
            rho: 7.0,
            p_mean: -1.2,
            p_std: 1.2,
        }
    }
}

impl EdmSchedule {
    /// `c_skip(σ) = σ_d² / (σ² + σ_d²)`.
    pub fn c_skip(&self, sigma: f32) -> f32 {
        let sd2 = self.sigma_data * self.sigma_data;
        sd2 / (sigma * sigma + sd2)
    }

    /// `c_out(σ) = σ·σ_d / √(σ² + σ_d²)`.
    pub fn c_out(&self, sigma: f32) -> f32 {
        let sd = self.sigma_data;
        sigma * sd / (sigma * sigma + sd * sd).sqrt()
    }

    /// `c_in(σ) = 1 / √(σ² + σ_d²)`.
    pub fn c_in(&self, sigma: f32) -> f32 {
        1.0 / (sigma * sigma + self.sigma_data * self.sigma_data).sqrt()
    }

    /// `c_noise(σ) = ln(σ) / 4`.
    pub fn c_noise(&self, sigma: f32) -> f32 {
        sigma.max(1e-20).ln() / 4.0
    }

    /// EDM loss weight `λ(σ) = (σ² + σ_d²) / (σ·σ_d)²`.
    pub fn loss_weight(&self, sigma: f32) -> f32 {
        let sd = self.sigma_data;
        (sigma * sigma + sd * sd) / (sigma * sd).powi(2)
    }

    /// Draws a training noise level: `ln σ ~ N(p_mean, p_std²)`.
    pub fn sample_sigma(&self, rng: &mut Rng) -> f32 {
        (self.p_mean + self.p_std * rng.normal()).exp()
    }

    /// The Karras sampling grid of `n` decreasing sigmas, followed by the
    /// terminal 0 (so the returned vector has `n + 1` entries).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn sigma_steps(&self, n: usize) -> Vec<f32> {
        assert!(n >= 2, "need at least 2 sampling steps");
        let inv_rho = 1.0 / self.rho;
        let smax = self.sigma_max.powf(inv_rho);
        let smin = self.sigma_min.powf(inv_rho);
        let mut out: Vec<f32> = (0..n)
            .map(|i| {
                let t = i as f32 / (n - 1) as f32;
                (smax + t * (smin - smax)).powf(self.rho)
            })
            .collect();
        out.push(0.0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preconditioning_identities() {
        let s = EdmSchedule::default();
        for sigma in [0.01f32, 0.5, 2.0, 80.0] {
            // c_skip² + c_out²/σ_d² · (σ²+σ_d²)… simpler: the EDM identity
            // c_skip(σ)·σ² + c_out(σ)²... verify the defining property:
            // c_in² · (σ² + σ_d²) = 1.
            let cin = s.c_in(sigma);
            assert!(
                (cin * cin * (sigma * sigma + 0.25) - 1.0).abs() < 1e-5,
                "sigma {sigma}"
            );
            // c_out² + c_skip²·σ²… EDM: c_out(σ)² = σ²σ_d²/(σ²+σ_d²) and
            // c_skip·(σ²+σ_d²) = σ_d².
            assert!((s.c_skip(sigma) * (sigma * sigma + 0.25) - 0.25).abs() < 1e-5);
        }
    }

    #[test]
    fn c_skip_limits() {
        let s = EdmSchedule::default();
        assert!(s.c_skip(0.001) > 0.99); // low noise: mostly pass-through
        assert!(s.c_skip(80.0) < 0.001); // high noise: mostly network output
    }

    #[test]
    fn sigma_grid_is_decreasing_with_terminal_zero() {
        let s = EdmSchedule::default();
        let grid = s.sigma_steps(18);
        assert_eq!(grid.len(), 19);
        assert!((grid[0] - 80.0).abs() < 1e-3);
        assert!((grid[17] - 0.002).abs() < 1e-5);
        assert_eq!(grid[18], 0.0);
        for w in grid.windows(2) {
            assert!(w[0] > w[1], "grid not decreasing: {w:?}");
        }
    }

    #[test]
    fn rho_seven_shrinks_steps_toward_low_noise() {
        // Karras grids take huge absolute strides at high sigma and tiny
        // ones near the data manifold: the linear step sizes must decrease
        // monotonically along the trajectory.
        let s = EdmSchedule::default();
        let grid = s.sigma_steps(10);
        let steps: Vec<f32> = grid.windows(2).map(|w| w[0] - w[1]).collect();
        for w in steps[..steps.len() - 1].windows(2) {
            assert!(w[0] > w[1], "step sizes not decreasing: {steps:?}");
        }
        // And the first stride dwarfs the last sigma-to-sigma stride.
        assert!(steps[0] > 1000.0 * steps[steps.len() - 2]);
    }

    #[test]
    fn training_sigmas_are_lognormal() {
        let s = EdmSchedule::default();
        let mut rng = Rng::seed_from(1);
        let n = 10_000;
        let lns: Vec<f32> = (0..n).map(|_| s.sample_sigma(&mut rng).ln()).collect();
        let mean = lns.iter().sum::<f32>() / n as f32;
        let var = lns.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!((mean + 1.2).abs() < 0.05, "mean {mean}");
        assert!((var - 1.44).abs() < 0.1, "var {var}");
    }

    #[test]
    fn loss_weight_positive_and_normalizing() {
        let s = EdmSchedule::default();
        for sigma in [0.01f32, 0.5, 5.0] {
            let lw = s.loss_weight(sigma);
            assert!(lw > 0.0);
            // λ(σ)·c_out(σ)² = 1: the weight exactly undoes the output
            // scaling, keeping gradient magnitude uniform across σ.
            assert!((lw * s.c_out(sigma).powi(2) - 1.0).abs() < 1e-4);
        }
    }
}
