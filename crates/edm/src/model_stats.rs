//! Static workload analysis of the U-Net: per-block MAC and memory counts,
//! and the compute/memory breakdown by block type (paper Figure 4).

use crate::model::{block_ids, UNetConfig};
use serde::{Deserialize, Serialize};
use sqdm_quant::{BlockKind, BlockProfile};

fn conv_macs(k: usize, c: usize, kh: usize, oh: usize, ow: usize) -> u64 {
    (k * c * kh * kh * oh * ow) as u64
}

/// Computes the [`BlockProfile`] of every block for a batch-1 forward pass.
///
/// Block indices match [`block_ids`]; the profiles drive both the
/// mixed-precision cost model (Table II's savings columns) and the
/// accelerator workload generator.
pub fn block_profiles(cfg: &UNetConfig) -> Vec<BlockProfile> {
    let c = cfg.base_channels;
    let c2 = 2 * c;
    let s = cfg.image_size;
    let s2 = s / 2;
    let e = cfg.emb_dim;
    let ic = cfg.in_channels;
    let mut out = Vec::with_capacity(block_ids::COUNT);

    let conv_block = |index: usize, cin: usize, cout: usize, sp: usize| -> BlockProfile {
        let macs = conv_macs(cout, cin, 3, sp, sp)
            + conv_macs(cout, cout, 3, sp, sp)
            + if cin != cout {
                conv_macs(cout, cin, 1, sp, sp)
            } else {
                0
            }
            + (e * cout) as u64; // embedding projection
        let weight_elems = (cout * cin * 9
            + cout * cout * 9
            + if cin != cout { cout * cin } else { 0 }
            + e * cout) as u64;
        let act_elems = (cin * sp * sp + cout * sp * sp) as u64;
        BlockProfile {
            index,
            kind: BlockKind::ConvAct,
            macs,
            weight_elems,
            act_elems,
            channel_len: cin * 9,
        }
    };

    // 0: input conv.
    out.push(BlockProfile {
        index: block_ids::IN_CONV,
        kind: BlockKind::ConvAct,
        macs: conv_macs(c, ic, 3, s, s),
        weight_elems: (c * ic * 9) as u64,
        act_elems: (ic * s * s + c * s * s) as u64,
        channel_len: ic * 9,
    });
    // 1-2: encoder full-res.
    out.push(conv_block(block_ids::ENC_HI[0], c, c, s));
    out.push(conv_block(block_ids::ENC_HI[1], c, c, s));
    // 3-4: encoder half-res.
    out.push(conv_block(block_ids::ENC_LO[0], c, c2, s2));
    out.push(conv_block(block_ids::ENC_LO[1], c2, c2, s2));
    // 5: attention at s2.
    let sp = s2 * s2;
    out.push(BlockProfile {
        index: block_ids::MID_ATTN,
        kind: BlockKind::Attention,
        macs: (4 * sp * c2 * c2 + 2 * sp * sp * c2) as u64,
        weight_elems: (4 * c2 * c2) as u64,
        act_elems: (2 * c2 * sp) as u64,
        channel_len: c2,
    });
    // 6: mid conv, 7: decoder low.
    out.push(conv_block(block_ids::MID_CONV, c2, c2, s2));
    out.push(conv_block(block_ids::DEC_LO, c2, c2, s2));
    // 8: skip merge (1×1 conv over concat).
    out.push(BlockProfile {
        index: block_ids::SKIP_MERGE,
        kind: BlockKind::Skip,
        macs: conv_macs(c, c2 + c, 1, s, s),
        weight_elems: (c * (c2 + c)) as u64,
        act_elems: ((c2 + c) * s * s + c * s * s) as u64,
        channel_len: c2 + c,
    });
    // 9-10: decoder full-res.
    out.push(conv_block(block_ids::DEC_HI[0], c, c, s));
    out.push(conv_block(block_ids::DEC_HI[1], c, c, s));
    // 11: output conv.
    out.push(BlockProfile {
        index: block_ids::OUT_CONV,
        kind: BlockKind::ConvAct,
        macs: conv_macs(ic, c, 3, s, s),
        weight_elems: (ic * c * 9) as u64,
        act_elems: (c * s * s + ic * s * s) as u64,
        channel_len: c * 9,
    });
    // 12-13: embedding MLP.
    for idx in block_ids::EMB {
        out.push(BlockProfile {
            index: idx,
            kind: BlockKind::Embedding,
            macs: (e * e) as u64,
            weight_elems: (e * e) as u64,
            act_elems: (2 * e) as u64,
            channel_len: e,
        });
    }
    out
}

/// One row of the Figure 4 breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KindShare {
    /// Block type.
    pub kind: BlockKind,
    /// Fraction of total MACs.
    pub compute_fraction: f64,
    /// Fraction of total memory traffic (weights + activations).
    pub memory_fraction: f64,
}

/// Aggregates profiles into per-kind compute and memory shares (Figure 4).
pub fn breakdown_by_kind(profiles: &[BlockProfile]) -> Vec<KindShare> {
    let total_macs: f64 = profiles.iter().map(|p| p.macs as f64).sum();
    let total_mem: f64 = profiles
        .iter()
        .map(|p| (p.weight_elems + p.act_elems) as f64)
        .sum();
    BlockKind::ALL
        .iter()
        .map(|&kind| {
            let macs: f64 = profiles
                .iter()
                .filter(|p| p.kind == kind)
                .map(|p| p.macs as f64)
                .sum();
            let mem: f64 = profiles
                .iter()
                .filter(|p| p.kind == kind)
                .map(|p| (p.weight_elems + p.act_elems) as f64)
                .sum();
            KindShare {
                kind,
                compute_fraction: macs / total_macs.max(1.0),
                memory_fraction: mem / total_mem.max(1.0),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_count_and_indices() {
        let profiles = block_profiles(&UNetConfig::default());
        assert_eq!(profiles.len(), block_ids::COUNT);
        for (i, p) in profiles.iter().enumerate() {
            assert_eq!(p.index, i);
            assert!(p.macs > 0);
            assert!(p.weight_elems > 0);
        }
    }

    #[test]
    fn conv_act_dominates_compute() {
        // Paper Figure 4: >90% of compute and >85% of memory in Conv+Act.
        let shares = breakdown_by_kind(&block_profiles(&UNetConfig::default()));
        let conv = shares
            .iter()
            .find(|s| s.kind == BlockKind::ConvAct)
            .unwrap();
        assert!(
            conv.compute_fraction > 0.80,
            "conv share {}",
            conv.compute_fraction
        );
        assert!(conv.memory_fraction > 0.70, "{}", conv.memory_fraction);
    }

    #[test]
    fn fractions_sum_to_one() {
        let shares = breakdown_by_kind(&block_profiles(&UNetConfig::default()));
        let cs: f64 = shares.iter().map(|s| s.compute_fraction).sum();
        let ms: f64 = shares.iter().map(|s| s.memory_fraction).sum();
        assert!((cs - 1.0).abs() < 1e-9);
        assert!((ms - 1.0).abs() < 1e-9);
    }

    #[test]
    fn embedding_blocks_are_cheap() {
        let profiles = block_profiles(&UNetConfig::default());
        let emb_macs: u64 = profiles
            .iter()
            .filter(|p| p.kind == BlockKind::Embedding)
            .map(|p| p.macs)
            .sum();
        let total: u64 = profiles.iter().map(|p| p.macs).sum();
        assert!((emb_macs as f64) < 0.01 * total as f64);
    }
}
