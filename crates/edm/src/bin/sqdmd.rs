//! `sqdmd` — the SQ-DM serving daemon.
//!
//! Binds an HTTP/1.1 listener, serves the five `/v1/*` endpoints (see
//! `sqdm_edm::wire`), and exits after a `POST /v1/drain` has completed
//! every in-flight denoise round. Drive it with `sqdmctl`.
//!
//! ```text
//! sqdmd [--addr HOST:PORT] [--max-batch N] [--max-pending N] [--energy-budget PJ] [--round-delay-ms N]
//! ```

use sqdm_edm::daemon::{self, DaemonConfig};
use std::time::Duration;

const USAGE: &str = "usage: sqdmd [--addr HOST:PORT] [--max-batch N] [--max-pending N] \
[--energy-budget PJ] [--round-delay-ms N]

  --addr HOST:PORT     bind address (default 127.0.0.1:7411; port 0 = ephemeral)
  --max-batch N        per-model in-flight batch capacity (default 4)
  --max-pending N      bound each model's pending queue; a full queue
                       rejects POST /v1/submit with 429 (default unbounded)
  --energy-budget PJ   simulated energy budget per admission window, in pJ:
                       switches admission to the energy-capped policy over
                       the accelerator cost model; /v1/stats then reports
                       per-model energy and occupancy (default off)
  --round-delay-ms N   pause between serve rounds, for testing (default 0)

The daemon runs until a POST /v1/drain completes: in-flight requests
finish their remaining denoise rounds, then the listener closes.";

fn fail(msg: &str) -> ! {
    eprintln!("sqdmd: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut config = DaemonConfig {
        addr: "127.0.0.1:7411".into(),
        ..DaemonConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            "--addr" => {
                config.addr = args.next().unwrap_or_else(|| fail("--addr needs a value"));
            }
            "--max-batch" => {
                config.max_batch = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--max-batch needs a positive integer"));
            }
            "--max-pending" => {
                config.max_pending = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| fail("--max-pending needs a positive integer")),
                );
            }
            "--energy-budget" => {
                config.energy_budget = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| fail("--energy-budget needs a positive integer (pJ)")),
                );
            }
            "--round-delay-ms" => {
                let ms: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--round-delay-ms needs an integer"));
                config.round_delay = Duration::from_millis(ms);
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
    }

    let handle = match daemon::spawn(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("sqdmd: failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("sqdmd listening on {}", handle.addr());
    handle.wait_drained();
    println!("sqdmd drained; shutting down");
    handle.shutdown();
}
