//! `sqdmctl` — typed CLI client for the `sqdmd` serving daemon.
//!
//! Speaks the shared `sqdm_edm::wire` protocol, so client and server
//! cannot drift. Every subcommand prints a human summary by default or
//! the raw JSON response with `--json`; non-2xx responses print the
//! server's error to stderr and exit 1.
//!
//! ```text
//! sqdmctl [--addr HOST:PORT] [--json] <register|submit|status|stats|drain> ...
//! ```

use sqdm_edm::wire::{self, client, json};
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::Duration;

const USAGE: &str = "usage: sqdmctl [--addr HOST:PORT] [--json] <command> [options]

commands:
  register --name NAME [--preset micro|default] [--precision fp32|int8|int8-fakequant|int8-native] [--seed N]
                       make a model resident; prints its model id
  submit   --model M --id N --steps N [--seed N] [--tenant N] [--priority N]
                       queue one generation request (priority matters only
                       under the Priority admission policy; a full bounded
                       queue answers HTTP 429)
  status   --id N      query a request (queued|running|done|failed)
  stats                serving stats: clock, rounds, rejected count, per-model
                       latency percentiles and energy/occupancy, tenant rollups
  drain                stop admissions, wait for in-flight requests, print final stats

global options:
  --addr HOST:PORT     daemon address (default 127.0.0.1:7411)
  --json               print the raw JSON response body";

fn fail(msg: &str) -> ! {
    eprintln!("sqdmctl: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// Flag values collected from the argument list.
struct Flags {
    values: Vec<(String, String)>,
}

impl Flags {
    fn get(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn parse<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        self.get(name).map(|v| {
            v.parse()
                .unwrap_or_else(|_| fail(&format!("invalid value {v:?} for --{name}")))
        })
    }

    fn require<T: std::str::FromStr>(&self, name: &str) -> T {
        self.parse(name)
            .unwrap_or_else(|| fail(&format!("missing required option --{name}")))
    }
}

fn resolve_addr(addr: &str) -> SocketAddr {
    addr.to_socket_addrs()
        .ok()
        .and_then(|mut it| it.next())
        .unwrap_or_else(|| fail(&format!("cannot resolve address {addr:?}")))
}

/// Sends one request; exits with the server's error on a non-2xx reply.
fn call(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> String {
    let resp = client::request(addr, method, path, body, timeout).unwrap_or_else(|e| {
        eprintln!("sqdmctl: request to {addr}{path} failed: {e}");
        std::process::exit(1);
    });
    if !resp.is_success() {
        let detail = json::from_str::<wire::ErrorReply>(&resp.body)
            .map(|e| e.error)
            .unwrap_or(resp.body);
        eprintln!("sqdmctl: {method} {path}: HTTP {}: {detail}", resp.status);
        std::process::exit(1);
    }
    resp.body
}

fn decode<'de, T: serde::Deserialize<'de>>(body: &str) -> T {
    json::from_str(body).unwrap_or_else(|e| {
        eprintln!("sqdmctl: unexpected response body: {e}");
        std::process::exit(1);
    })
}

/// Refuses to interpret a reply from a daemon speaking a newer protocol
/// revision than this build; the typed error beats a silent mis-parse.
fn check_version(proto_version: u32) {
    if let Err(e) = wire::check_proto_version(proto_version) {
        eprintln!("sqdmctl: {e}");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7411".to_string();
    let mut json_out = false;
    let mut command = None;
    let mut flags = Flags { values: Vec::new() };

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            "--addr" => addr = it.next().unwrap_or_else(|| fail("--addr needs a value")),
            "--json" => json_out = true,
            flag if flag.starts_with("--") => {
                let value = it
                    .next()
                    .unwrap_or_else(|| fail(&format!("{flag} needs a value")));
                flags.values.push((flag[2..].to_string(), value));
            }
            cmd if command.is_none() => command = Some(cmd.to_string()),
            other => fail(&format!("unexpected argument {other:?}")),
        }
    }
    let command = command.unwrap_or_else(|| fail("missing command"));
    let addr = resolve_addr(&addr);
    let timeout = Duration::from_secs(30);

    match command.as_str() {
        "register" => {
            let req = wire::RegisterModel {
                name: flags.require("name"),
                preset: flags.get("preset").unwrap_or("micro").to_string(),
                precision: flags.get("precision").unwrap_or("fp32").to_string(),
                seed: flags.parse("seed").unwrap_or(0),
            };
            let body = json::to_string(&req).expect("request encoding is infallible");
            let reply = call(addr, "POST", "/v1/models", Some(&body), timeout);
            if json_out {
                println!("{reply}");
            } else {
                let r: wire::ModelRegistered = decode(&reply);
                check_version(r.proto_version);
                println!("registered model {} ({}, {})", r.model, r.name, r.precision);
            }
        }
        "submit" => {
            let id: u64 = flags.require("id");
            let req = wire::Submit {
                model: flags.require("model"),
                id,
                seed: flags.parse("seed").unwrap_or(id),
                steps: flags.require("steps"),
                tenant: flags.parse("tenant").unwrap_or(0),
                priority: flags.parse("priority").unwrap_or(0),
            };
            let body = json::to_string(&req).expect("request encoding is infallible");
            let reply = call(addr, "POST", "/v1/submit", Some(&body), timeout);
            if json_out {
                println!("{reply}");
            } else {
                let r: wire::Submitted = decode(&reply);
                check_version(r.proto_version);
                println!(
                    "submitted request {} to model {} at step {}",
                    r.id, r.model, r.arrival_step
                );
            }
        }
        "status" => {
            let id: u64 = flags.require("id");
            let reply = call(addr, "GET", &format!("/v1/status/{id}"), None, timeout);
            if json_out {
                println!("{reply}");
            } else {
                let r: wire::StatusReply = decode(&reply);
                check_version(r.proto_version);
                match (r.state.as_str(), &r.image, &r.error) {
                    ("done", Some(img), _) => println!(
                        "request {} on model {}: done, image {:?} ({} px)",
                        r.id,
                        r.model,
                        img.dims,
                        img.bits.len()
                    ),
                    ("failed", _, Some(err)) => {
                        println!("request {} on model {}: failed: {err}", r.id, r.model)
                    }
                    (state, _, _) => println!("request {} on model {}: {state}", r.id, r.model),
                }
            }
        }
        "stats" => {
            let reply = call(addr, "GET", "/v1/stats", None, timeout);
            if json_out {
                println!("{reply}");
            } else {
                let s: wire::StatsReply = decode(&reply);
                check_version(s.proto_version);
                println!(
                    "clock {} | rounds {} | active {} | rejected {} | draining {}",
                    s.clock, s.rounds, s.active_requests, s.rejected, s.draining
                );
                for m in &s.models {
                    let pct =
                        |v: Option<usize>| v.map(|p| p.to_string()).unwrap_or_else(|| "-".into());
                    let num = |v: Option<f64>, digits: usize| {
                        v.map(|x| format!("{x:.digits$}")).unwrap_or_else(|| "-".into())
                    };
                    println!(
                        "model {} ({}, {}): {} completed, {} rounds, latency p50/p95/p99 {}/{}/{} steps, \
                         energy/image {} pJ, occupancy mean/peak {}/{}",
                        m.model,
                        m.name,
                        m.precision,
                        m.completed,
                        m.rounds,
                        pct(m.p50_latency),
                        pct(m.p95_latency),
                        pct(m.p99_latency),
                        num(m.energy_per_image_pj, 0),
                        num(m.mean_occupancy, 3),
                        num(m.peak_occupancy, 3)
                    );
                }
                for t in &s.tenants {
                    println!(
                        "tenant {}: {} requests, {} steps, mean latency {:.2}",
                        t.tenant, t.requests, t.total_steps, t.mean_latency
                    );
                }
            }
        }
        "drain" => {
            // Drain blocks until in-flight requests finish; allow longer.
            let reply = call(addr, "POST", "/v1/drain", None, Duration::from_secs(600));
            if json_out {
                println!("{reply}");
            } else {
                let r: wire::DrainReply = decode(&reply);
                check_version(r.proto_version);
                println!(
                    "drained: {} requests completed, {} rounds, final step {}",
                    r.completed, r.rounds, r.final_step
                );
            }
        }
        other => fail(&format!("unknown command {other:?}")),
    }
}
