//! # sqdm-edm
//!
//! A complete, trainable Elucidated Diffusion Model (EDM, Karras et al.) in
//! Rust: the preconditioned denoiser, Karras sigma schedule, deterministic
//! Heun sampler, a U-Net with the paper's four block types (Conv+Act, Skip,
//! Embedding, Attention), EDM training, the SiLU→ReLU finetuning procedure,
//! four synthetic stand-in datasets, and the sFID quality metric.
//!
//! This crate is the substrate on which all of SQ-DM's model-side
//! experiments (Tables I/II, Figures 3–7) run.
//!
//! # Examples
//!
//! Train a tiny model and draw a sample:
//!
//! ```
//! use sqdm_edm::{
//!     Dataset, DatasetKind, Denoiser, EdmSchedule, SamplerConfig, TrainConfig, UNet,
//!     UNetConfig,
//! };
//! use sqdm_tensor::Rng;
//! # fn main() -> Result<(), sqdm_edm::EdmError> {
//! let mut rng = Rng::seed_from(0);
//! let mut net = UNet::new(UNetConfig::micro(), &mut rng)?;
//! let den = Denoiser::new(EdmSchedule::default());
//! let ds = Dataset::new(DatasetKind::CifarLike, 1, 8);
//! sqdm_edm::train(&mut net, &den, &ds, TrainConfig { steps: 3, batch: 2, lr: 1e-3 }, &mut rng)?;
//! let imgs = sqdm_edm::sample(&mut net, &den, 1, SamplerConfig { steps: 3 }, None, &mut rng)?;
//! assert_eq!(imgs.dims(), &[1, 1, 8, 8]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod cost;
pub mod daemon;
mod dataset;
pub mod delta;
mod denoiser;
mod error;
mod fid;
pub mod model;
mod model_stats;
pub mod registry;
mod sampler;
mod schedule;
pub mod serve;
pub mod traffic;
mod train;
pub mod wire;

pub use cost::{AccelCostModel, CostEstimate, CostModel, CostModelConfig, NoopCostModel};
pub use daemon::{DaemonConfig, DaemonHandle, ENERGY_WINDOW_STEPS};
pub use dataset::{Dataset, DatasetKind};
pub use delta::{DeltaSession, DEFAULT_TRACE_TOL};
pub use denoiser::Denoiser;
pub use error::{EdmError, Result};
pub use fid::{frechet_distance, sfid, FeatureExtractor};
pub use model::{block_ids, ActEvent, ActObserver, RunConfig, UNet, UNetConfig};
pub use model_stats::{block_profiles, breakdown_by_kind, KindShare};
pub use registry::{
    ModelId, ModelRegistry, RegistryRequest, RegistryScheduler, RegistryStats, ResidentModel,
};
pub use sampler::{
    sample, sample_delta, sample_stochastic, sample_with_observer, ChurnConfig, SamplerConfig,
    StepObserver,
};
pub use schedule::EdmSchedule;
// Re-exported so `RunConfig::packs` and the registry types are usable
// without naming `sqdm_nn` directly.
pub use serve::{
    delta_row_masks, serve_batch, AdmissionPolicy, AdmitCtx, AdmitDecision, BackpressurePolicy,
    BatchSampler, Candidate, EnergyCappedPolicy, FairSharePolicy, FifoPolicy, GangPolicy,
    InflightInfo, OccupancyTargetPolicy, Policy, PreemptPolicy, PriorityPolicy, QueueBound,
    RequestStats, ScheduledRequest, Scheduler, ServeRequest, ServeStats, ServedOutput,
    ShortestBudgetFirstPolicy, TenantId, TenantRollup, PRIORITY_AGE_STEPS,
};
pub use sqdm_nn::PackCache;
pub use train::{finetune_relu, train, train_step, TrainConfig, TrainReport};
