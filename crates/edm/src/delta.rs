//! Temporal-delta execution of the U-Net's Conv+Act convolutions.
//!
//! The paper's temporal-sparsity observation (Figure 7) is that between
//! consecutive denoising steps most activation channels barely move. A
//! [`DeltaSession`] exploits that on the integer engine: for each Conv+Act
//! convolution it keeps the previous step's im2col codes and output, derives
//! a per-channel change mask from the layer's [`TemporalTrace`], and asks
//! the sparse-delta kernel
//! ([`sqdm_tensor::ops::int::conv2d_i8_packed_delta_multi`]) to recompute
//! only the reduction rows whose inputs actually changed.
//!
//! Correctness does not depend on the trace being right: the kernel unions
//! the trace mask with an exact per-row code comparison, so the recomputed
//! set is always a superset of the truly-changed rows, and it falls back to
//! a full dense pass whenever the activation scale or geometry shifts
//! between steps. The sparse and dense dispatch paths of the kernel are
//! bitwise identical to each other; see the kernel docs for when the delta
//! path is bitwise equal to a from-scratch dense pass.
//!
//! The session is keyed by weight-buffer identity, so one session can serve
//! every Conv+Act block of a U-Net across a whole sampling trajectory. Use
//! one session per trajectory (or [`DeltaSession::reset`] between
//! trajectories): carrying state across unrelated inputs is safe — the
//! exact-diff union would recompute everything — but wastes the first step.

use std::collections::HashMap;

use crate::error::Result;
use sqdm_nn::layers::Conv2d;
use sqdm_nn::{PackCache, QuantExecutor};
use sqdm_sparsity::{channel_sparsity, TemporalTrace};
use sqdm_tensor::ops::int::{ConvDeltaState, DELTA_DENSE_THRESHOLD};
use sqdm_tensor::{arena, Tensor};

/// Default trace tolerance: a channel counts as changed when its zero
/// fraction moved by more than this between consecutive steps. Loose on
/// purpose — the kernel's exact-diff union keeps the result correct, the
/// trace only biases *which* rows are assumed unchanged.
pub const DEFAULT_TRACE_TOL: f64 = 0.05;

/// Per-layer delta state: the sparsity trace driving the change mask plus
/// the kernel's carried codes and outputs.
#[derive(Debug)]
struct LayerDelta {
    trace: TemporalTrace,
    state: ConvDeltaState,
}

/// Drives sparse temporal-delta convolutions across denoising steps.
///
/// Thread the session through [`crate::RunConfig::delta`]; the U-Net's
/// Conv+Act blocks route their two main convolutions through
/// [`DeltaSession::conv_forward`] when it is present. Only the native
/// integer engine has a delta kernel — fake-quant and batched executors
/// fall through to the ordinary cached path, so a session is always safe
/// to install.
#[derive(Debug)]
pub struct DeltaSession {
    tol: f64,
    dense_threshold: f32,
    layers: HashMap<(usize, usize), LayerDelta>,
}

impl Default for DeltaSession {
    fn default() -> Self {
        DeltaSession::new(DEFAULT_TRACE_TOL)
    }
}

impl DeltaSession {
    /// Creates a session with the given trace tolerance and the kernel's
    /// default dense-fallback threshold.
    pub fn new(tol: f64) -> Self {
        DeltaSession {
            tol,
            dense_threshold: DELTA_DENSE_THRESHOLD,
            layers: HashMap::new(),
        }
    }

    /// Overrides the changed-row fraction above which the kernel runs the
    /// packed dense path instead of the sparse delta path. `<= 0.0` forces
    /// dense dispatch, `> 1.0` forces sparse dispatch; both produce bitwise
    /// identical outputs (pinned by tests).
    #[must_use]
    pub fn with_dense_threshold(mut self, dense_threshold: f32) -> Self {
        self.dense_threshold = dense_threshold;
        self
    }

    /// Drops all carried per-layer state; the next step of every layer runs
    /// dense. Call between unrelated trajectories when reusing a session.
    pub fn reset(&mut self) {
        self.layers.clear();
    }

    /// Total steps executed through the sparse delta path, over all layers.
    pub fn delta_steps(&self) -> usize {
        self.layers.values().map(|l| l.state.delta_steps).sum()
    }

    /// Total steps executed through the dense path, over all layers.
    pub fn dense_steps(&self) -> usize {
        self.layers.values().map(|l| l.state.dense_steps).sum()
    }

    /// Number of distinct convolution layers the session has seen.
    pub fn layers_tracked(&self) -> usize {
        self.layers.len()
    }

    /// Runs one convolution through the delta engine.
    ///
    /// Pushes the input's per-channel sparsity onto the layer's trace,
    /// derives the change mask against the previous step, and invokes the
    /// executor's delta-aware convolution (which falls back to the plain
    /// cached path off the native engine).
    ///
    /// # Errors
    ///
    /// Propagates shape and quantization errors from the executor.
    pub fn conv_forward(
        &mut self,
        exec: &QuantExecutor,
        conv: &Conv2d,
        x: &Tensor,
        packs: Option<&PackCache>,
    ) -> Result<Tensor> {
        let (n, c, _, _) = x.shape().as_nchw()?;
        let wv = conv.weight.value.as_slice();
        let key = (wv.as_ptr() as usize, wv.len());
        let entry = self.layers.entry(key).or_insert_with(|| LayerDelta {
            trace: TemporalTrace::new(c),
            state: ConvDeltaState::new(),
        });
        entry.trace.push_step(channel_sparsity(x));
        let mask = entry.trace.change_mask(entry.trace.steps() - 1, self.tol);
        // The kernel wants a per-(stream, channel) mask; the trace is
        // aggregated over the batch, so replicate it per stream. The
        // exact-diff union inside the kernel recovers any per-stream
        // difference the aggregate hides.
        let mut changed = arena::take::<bool>(n * c);
        for _ in 0..n {
            changed.extend_from_slice(mask.as_slice());
        }
        let y = exec.conv_forward_delta_cached(
            conv,
            x,
            packs,
            &changed,
            &mut entry.state,
            self.dense_threshold,
        );
        arena::recycle(changed);
        Ok(y?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqdm_quant::{BlockPrecision, ExecMode, QuantFormat};
    use sqdm_tensor::ops::Conv2dGeometry;
    use sqdm_tensor::Rng;

    fn int8_native_exec() -> QuantExecutor {
        QuantExecutor::new(BlockPrecision::uniform(QuantFormat::int8()))
            .with_mode(ExecMode::NativeInt)
    }

    #[test]
    fn session_tracks_layers_and_step_kinds() {
        let mut rng = Rng::seed_from(11);
        let conv = Conv2d::new(3, 4, 3, Conv2dGeometry::same(3), &mut rng);
        let exec = int8_native_exec();
        let mut ds = DeltaSession::new(0.05);
        let x = Tensor::randn([2, 3, 6, 6], &mut rng);
        let y0 = ds.conv_forward(&exec, &conv, &x, None).unwrap();
        // Same input again: the carry engages (same scale), all rows
        // unchanged under the exact diff.
        let y1 = ds.conv_forward(&exec, &conv, &x, None).unwrap();
        assert_eq!(y0.as_slice(), y1.as_slice());
        assert_eq!(ds.layers_tracked(), 1);
        assert_eq!(ds.dense_steps() + ds.delta_steps(), 2);
        assert!(ds.dense_steps() >= 1, "first step must run dense");
        ds.reset();
        assert_eq!(ds.layers_tracked(), 0);
    }

    #[test]
    fn delta_matches_plain_cached_path_closely() {
        // The delta path re-quantizes against the *current* activation
        // scale and falls back dense on scale changes, so across a slowly
        // drifting input sequence it stays numerically equal to the plain
        // path whenever the carry is exact, and bitwise-equal dispatch is
        // pinned at the kernel level. Here: same input → identical output.
        let mut rng = Rng::seed_from(12);
        let conv = Conv2d::new(2, 2, 3, Conv2dGeometry::same(3), &mut rng);
        let exec = int8_native_exec();
        let x = Tensor::randn([1, 2, 5, 5], &mut rng);
        let plain = exec.conv_forward(&conv, &x).unwrap();
        let mut ds = DeltaSession::new(0.05);
        for _ in 0..3 {
            let y = ds.conv_forward(&exec, &conv, &x, None).unwrap();
            assert_eq!(y.as_slice(), plain.as_slice());
        }
    }

    #[test]
    fn fake_quant_executor_falls_through() {
        let mut rng = Rng::seed_from(13);
        let conv = Conv2d::new(2, 3, 3, Conv2dGeometry::same(3), &mut rng);
        let exec = QuantExecutor::new(BlockPrecision::uniform(QuantFormat::int8()))
            .with_mode(ExecMode::FakeQuant);
        let x = Tensor::randn([1, 2, 4, 4], &mut rng);
        let plain = exec.conv_forward(&conv, &x).unwrap();
        let mut ds = DeltaSession::new(0.05);
        let y = ds.conv_forward(&exec, &conv, &x, None).unwrap();
        assert_eq!(y.as_slice(), plain.as_slice());
        // The fallback path never touches the delta state.
        assert_eq!(ds.delta_steps() + ds.dense_steps(), 0);
    }
}
