//! The shared cost-model layer between the accelerator simulator and the
//! serving stack.
//!
//! ROADMAP item 5 asks for hardware-in-the-loop serving: the paper's
//! accelerator model (`sqdm_accel`) and the continuous-batching admission
//! path (`crate::serve`) joined so admission policies can reason about
//! simulated energy and PE occupancy. This module owns that boundary:
//!
//! * [`CostEstimate`] — what one stream costs per executed denoise round,
//!   as a policy sees it inside `AdmitCtx`.
//! * [`CostModel`] — the trait supplying estimates at step boundaries and
//!   accounting actual rounds as they execute.
//! * [`NoopCostModel`] — the default: every estimate is zero, so every
//!   pre-existing policy's decisions are preserved **bitwise** (they never
//!   read costs, and zero-cost estimates steer the new policies into
//!   admit-everything behavior).
//! * [`AccelCostModel`] — drives [`sqdm_accel::Accelerator::step_round`]
//!   one denoise round at a time under a DVFS throttle curve, accumulating
//!   a [`RunLedger`].
//! * [`CostModelConfig`] — the `Copy` selector that schedulers and the
//!   daemon carry (they are `Copy` themselves, so they cannot own a boxed
//!   model); the admission engine expands it into a boxed model per run.
//!
//! Costs are *simulated*: they never touch the denoise arithmetic, so the
//! bitwise determinism contract (every served image equals the solo
//! `sample()` bits) is structurally unaffected by any cost model choice.

use serde::{Deserialize, Serialize};
use sqdm_accel::{
    Accelerator, AcceleratorConfig, ConvWorkload, LayerQuant, PowerProfile, RoundStats, RunLedger,
    ThrottleCurve,
};

/// Estimated per-round cost of one stream, as presented to admission
/// policies through `AdmitCtx::costs` / `AdmitCtx::inflight_costs`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Simulated energy one denoise round of this stream costs, in pJ
    /// (nominal frequency; policies budget against the un-throttled
    /// estimate so their decisions do not feed back through the governor).
    pub round_energy_pj: f64,
    /// Fraction of the provisioned PE array one round of this stream
    /// occupies, in `0.0..=1.0`.
    pub occupancy_share: f64,
}

impl CostEstimate {
    /// The free estimate: what [`NoopCostModel`] returns for everything.
    pub const ZERO: CostEstimate = CostEstimate {
        round_energy_pj: 0.0,
        occupancy_share: 0.0,
    };
}

/// A model of what serving work costs on the simulated accelerator.
///
/// Two call sites drive it, both on the scheduler's virtual clock:
/// [`CostModel::stream_cost`] at step boundaries (estimates for admission
/// decisions) and [`CostModel::round_accounting`] once per executed
/// batched round (actuals for stats and ledgers). Implementations must be
/// deterministic — estimates are part of admission decisions, which feed
/// the bitwise reproducibility contract.
pub trait CostModel: std::fmt::Debug + Send {
    /// Estimated per-round cost of a stream with `remaining` denoise
    /// steps still owed.
    fn stream_cost(&self, remaining: usize) -> CostEstimate;

    /// Accounts one executed round over `batch` streams; returns the
    /// round's `(energy_pj, occupancy)` after any DVFS throttling.
    fn round_accounting(&mut self, batch: usize) -> (f64, f64);
}

/// The zero cost model: estimates and accounting are all zero.
///
/// With this model installed, every pre-existing policy produces exactly
/// the decisions it produced before costs existed, and the cost-aware
/// policies degrade to admit-everything — the compatibility anchor the
/// no-op proptest pins.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopCostModel;

impl CostModel for NoopCostModel {
    fn stream_cost(&self, _remaining: usize) -> CostEstimate {
        CostEstimate::ZERO
    }

    fn round_accounting(&mut self, _batch: usize) -> (f64, f64) {
        (0.0, 0.0)
    }
}

/// The representative per-round workload the accelerator-backed cost
/// model prices: a small U-Net-shaped stack (encoder / bottleneck /
/// decoder convolutions) at INT8, the serving precision the daemon
/// defaults to. One evaluation of this stack ≈ one stream's share of one
/// batched denoise round.
fn serving_layers() -> Vec<(ConvWorkload, LayerQuant)> {
    vec![
        (
            ConvWorkload::uniform(16, 16, 3, 3, 16, 16, 0.6),
            LayerQuant::int8(),
        ),
        (
            ConvWorkload::uniform(32, 16, 3, 3, 8, 8, 0.55),
            LayerQuant::int8(),
        ),
        (
            ConvWorkload::uniform(16, 32, 3, 3, 16, 16, 0.5),
            LayerQuant::int8(),
        ),
    ]
}

/// Cost model backed by the paper's accelerator configuration, driven one
/// denoise round at a time through [`Accelerator::step_round`] under a
/// [`PowerProfile`] throttle curve.
///
/// Estimates ([`CostModel::stream_cost`]) are nominal-frequency costs so
/// admission budgeting stays a pure function of the request set; actuals
/// ([`CostModel::round_accounting`]) apply the DVFS curve to the round's
/// occupancy and accumulate in the [`RunLedger`].
#[derive(Debug)]
pub struct AccelCostModel {
    acc: Accelerator,
    layers: Vec<(ConvWorkload, LayerQuant)>,
    /// Batch slots the deployment is provisioned for (the occupancy
    /// denominator).
    provisioned: usize,
    curve: ThrottleCurve,
    /// Nominal (un-throttled) energy of one stream's round, pJ.
    unit_energy_pj: f64,
    /// Occupancy of a single-stream round (`intensity / provisioned`).
    unit_occupancy: f64,
    /// Per-batch-size round costs, computed once and reused (`[0]` unused).
    round_cache: Vec<Option<RoundStats>>,
    /// Every accounted round, in execution order.
    ledger: RunLedger,
}

impl AccelCostModel {
    /// Builds the model for a deployment with `provisioned` batch slots
    /// under `profile`'s throttle curve.
    pub fn new(profile: PowerProfile, provisioned: usize) -> Self {
        let provisioned = provisioned.max(1);
        let acc = Accelerator::new(AcceleratorConfig::paper());
        let layers = serving_layers();
        let curve = profile.curve();
        let base = acc.run_model(&layers, None);
        let unit = acc.step_round(&layers, None, 1, provisioned, &curve);
        AccelCostModel {
            acc,
            layers,
            provisioned,
            curve,
            unit_energy_pj: base.energy.total_pj(),
            unit_occupancy: unit.occupancy,
            round_cache: vec![None; provisioned + 1],
            ledger: RunLedger::default(),
        }
    }

    /// The accumulated occupancy/energy ledger.
    pub fn ledger(&self) -> &RunLedger {
        &self.ledger
    }

    fn round(&mut self, batch: usize) -> RoundStats {
        let idx = batch.min(self.provisioned);
        if let Some(cached) = self.round_cache.get(idx).and_then(|c| *c) {
            if cached.batch == batch {
                return cached;
            }
        }
        let stats = self
            .acc
            .step_round(&self.layers, None, batch, self.provisioned, &self.curve);
        if idx == batch {
            self.round_cache[idx] = Some(stats);
        }
        stats
    }
}

impl CostModel for AccelCostModel {
    fn stream_cost(&self, _remaining: usize) -> CostEstimate {
        CostEstimate {
            round_energy_pj: self.unit_energy_pj,
            occupancy_share: self.unit_occupancy,
        }
    }

    fn round_accounting(&mut self, batch: usize) -> (f64, f64) {
        if batch == 0 {
            return (0.0, 0.0);
        }
        let stats = self.round(batch);
        self.ledger.record(stats);
        (stats.energy_pj, stats.occupancy)
    }
}

/// The `Copy` cost-model selector carried by `Scheduler`,
/// `RegistryScheduler`, and the daemon config (all `Copy`/cloneable
/// surfaces that cannot own a boxed trait object). The admission engine
/// expands it into the boxed [`CostModel`] that lives for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CostModelConfig {
    /// No cost model: zero estimates, zero accounting. The default;
    /// preserves every pre-existing policy decision bitwise.
    Noop,
    /// The accelerator-backed model under a DVFS throttle profile.
    Accel {
        /// Which built-in throttle curve governs the simulated DVFS.
        profile: PowerProfile,
    },
}

impl Default for CostModelConfig {
    fn default() -> Self {
        CostModelConfig::Noop
    }
}

impl CostModelConfig {
    /// Builds the boxed model for a deployment provisioned with
    /// `provisioned` batch slots.
    pub fn into_cost_model(self, provisioned: usize) -> Box<dyn CostModel> {
        match self {
            CostModelConfig::Noop => Box::new(NoopCostModel),
            CostModelConfig::Accel { profile } => {
                Box::new(AccelCostModel::new(profile, provisioned))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_model_is_free() {
        let mut m = NoopCostModel;
        let c = m.stream_cost(7);
        assert_eq!(c.round_energy_pj, 0.0);
        assert_eq!(c.occupancy_share, 0.0);
        assert_eq!(m.round_accounting(3), (0.0, 0.0));
    }

    #[test]
    fn accel_model_estimates_are_positive_and_stable() {
        let m = AccelCostModel::new(PowerProfile::Efficiency, 4);
        let a = m.stream_cost(5);
        let b = m.stream_cost(2);
        // Estimates are per-round and independent of the remaining budget.
        assert_eq!(a.round_energy_pj, b.round_energy_pj);
        assert!(a.round_energy_pj > 0.0);
        assert!(a.occupancy_share > 0.0 && a.occupancy_share <= 1.0);
    }

    #[test]
    fn accel_accounting_fills_the_ledger_and_caches_rounds() {
        let mut m = AccelCostModel::new(PowerProfile::Efficiency, 4);
        let (e1, o1) = m.round_accounting(1);
        let (e2, o2) = m.round_accounting(4);
        let (e1b, o1b) = m.round_accounting(1);
        assert!(e1 > 0.0 && e2 > e1);
        assert!(o2 > o1, "fuller batches occupy more of the array");
        assert_eq!((e1, o1), (e1b, o1b), "cached rounds are identical");
        assert_eq!(m.ledger().rounds.len(), 3);
        assert!(m.ledger().total_energy_pj() > 0.0);
        assert_eq!(m.round_accounting(0), (0.0, 0.0));
        assert_eq!(m.ledger().rounds.len(), 3, "idle rounds are not recorded");
    }

    #[test]
    fn throttled_profile_spends_less_per_round_at_low_occupancy() {
        let mut eff = AccelCostModel::new(PowerProfile::Efficiency, 8);
        let mut perf = AccelCostModel::new(PowerProfile::Performance, 8);
        let (e_eff, _) = eff.round_accounting(1);
        let (e_perf, _) = perf.round_accounting(1);
        assert!(
            e_eff < e_perf,
            "efficiency profile at low occupancy must save energy: {e_eff} vs {e_perf}"
        );
    }

    #[test]
    fn config_expands_to_the_right_model() {
        let noop = CostModelConfig::Noop.into_cost_model(4);
        assert_eq!(noop.stream_cost(3).round_energy_pj, 0.0);
        let accel = CostModelConfig::Accel {
            profile: PowerProfile::Balanced,
        }
        .into_cost_model(4);
        assert!(accel.stream_cost(3).round_energy_pj > 0.0);
        assert_eq!(CostModelConfig::default(), CostModelConfig::Noop);
    }
}
