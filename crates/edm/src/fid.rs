//! The sFID image-quality metric: a Fréchet distance over features from a
//! fixed random convolutional network.
//!
//! The paper measures generation quality with FID over Inception-v3
//! features. Inception weights are not available here, so the reproduction
//! substitutes a *fixed, randomly initialized* two-layer conv feature
//! extractor (a standard trick: random conv features preserve enough
//! geometry to rank distribution shifts) and computes the identical Fréchet
//! statistic. Absolute values differ from the paper's FID, but *orderings*
//! across quantization formats — the content of Tables I/II — are
//! preserved.

use crate::error::{EdmError, Result};
use sqdm_tensor::ops::{conv2d, sqrtm_psd, trace, Conv2dGeometry};
use sqdm_tensor::stats::mean_and_covariance;
use sqdm_tensor::{Rng, Tensor};

/// A fixed random convolutional feature extractor.
///
/// Architecture: conv3×3 stride 2 → tanh → conv3×3 stride 2 → tanh →
/// global average + maximum pooling, concatenated. Weights are frozen at
/// construction from the given seed; every evaluation in the repository
/// uses seed 0xF1D so scores are comparable across runs.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    w1: Tensor,
    w2: Tensor,
    mid_channels: usize,
    out_channels: usize,
}

impl FeatureExtractor {
    /// The canonical extractor used by all experiments.
    pub fn standard(in_channels: usize) -> Self {
        Self::new(in_channels, 12, 16, 0xF1D)
    }

    /// Creates an extractor with explicit widths and seed.
    pub fn new(in_channels: usize, mid_channels: usize, out_channels: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        let s1 = (2.0 / (in_channels * 9) as f32).sqrt();
        let s2 = (2.0 / (mid_channels * 9) as f32).sqrt();
        FeatureExtractor {
            w1: Tensor::randn([mid_channels, in_channels, 3, 3], &mut rng).scale(s1),
            w2: Tensor::randn([out_channels, mid_channels, 3, 3], &mut rng).scale(s2),
            mid_channels,
            out_channels,
        }
    }

    /// Feature dimensionality (mean-pool + max-pool concatenation).
    pub fn dim(&self) -> usize {
        2 * self.out_channels
    }

    /// Extracts features for a batch `[N, C, H, W] → [N, dim]`.
    ///
    /// # Errors
    ///
    /// Propagates convolution shape errors.
    pub fn features(&self, images: &Tensor) -> Result<Tensor> {
        let _ = self.mid_channels;
        let g = Conv2dGeometry::new(2, 1);
        let h = conv2d(images, &self.w1, None, g)?.map(|v| v.tanh());
        let h = conv2d(&h, &self.w2, None, g)?.map(|v| v.tanh());
        let (n, c, hh, ww) = h.shape().as_nchw()?;
        let hv = h.as_slice();
        let mut out = vec![0.0f32; n * 2 * c];
        for nn in 0..n {
            for ch in 0..c {
                let start = (nn * c + ch) * hh * ww;
                let slice = &hv[start..start + hh * ww];
                let mean = slice.iter().sum::<f32>() / (hh * ww) as f32;
                let max = slice.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
                out[nn * 2 * c + ch] = mean;
                out[nn * 2 * c + c + ch] = max;
            }
        }
        Ok(Tensor::from_vec(out, [n, 2 * c])?)
    }
}

/// Fréchet distance between the Gaussian fits of two feature sets
/// `[n, dim]`:
/// `FD² = |μ₁−μ₂|² + Tr(C₁ + C₂ − 2·(C₁^½ C₂ C₁^½)^½)`.
///
/// A small ridge (1e-6·I) regularizes near-singular covariances, as
/// standard FID implementations do.
///
/// # Errors
///
/// Returns an error if the feature matrices are not rank 2 with matching
/// dimensionality, or the covariance square root fails.
pub fn frechet_distance(features_a: &Tensor, features_b: &Tensor) -> Result<f64> {
    if features_a.rank() != 2 || features_b.rank() != 2 {
        return Err(EdmError::Config {
            reason: "feature matrices must be rank 2".into(),
        });
    }
    if features_a.dims()[1] != features_b.dims()[1] {
        return Err(EdmError::Config {
            reason: format!(
                "feature dims differ: {} vs {}",
                features_a.dims()[1],
                features_b.dims()[1]
            ),
        });
    }
    let d = features_a.dims()[1];
    let (mu_a, mut cov_a) = mean_and_covariance(features_a)?;
    let (mu_b, mut cov_b) = mean_and_covariance(features_b)?;
    for i in 0..d {
        let idx = i * d + i;
        cov_a.as_mut_slice()[idx] += 1e-6;
        cov_b.as_mut_slice()[idx] += 1e-6;
    }
    let mean_term: f64 = mu_a
        .as_slice()
        .iter()
        .zip(mu_b.as_slice())
        .map(|(&x, &y)| ((x - y) as f64).powi(2))
        .sum();
    // Tr((C_a C_b)^{1/2}) via the symmetric form (C_a^{1/2} C_b C_a^{1/2})^{1/2}.
    let sa = sqrtm_psd(&cov_a)?;
    let inner = sqdm_tensor::ops::matmul(&sqdm_tensor::ops::matmul(&sa, &cov_b)?, &sa)?;
    // Symmetrize against round-off before the second square root.
    let innert = sqdm_tensor::ops::transpose(&inner)?;
    let inner_sym = inner.add(&innert)?.scale(0.5);
    let cross = sqrtm_psd(&inner_sym)?;
    let tr = trace(&cov_a)? as f64 + trace(&cov_b)? as f64 - 2.0 * trace(&cross)? as f64;
    Ok((mean_term + tr).max(0.0))
}

/// Convenience: sFID between two image batches using an extractor.
///
/// # Errors
///
/// Propagates extraction and Fréchet-distance errors.
pub fn sfid(extractor: &FeatureExtractor, real: &Tensor, generated: &Tensor) -> Result<f64> {
    let fa = extractor.features(real)?;
    let fb = extractor.features(generated)?;
    frechet_distance(&fa, &fb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, DatasetKind};

    #[test]
    fn identical_sets_have_near_zero_distance() {
        let mut rng = Rng::seed_from(1);
        let f = Tensor::randn([200, 8], &mut rng);
        let d = frechet_distance(&f, &f).unwrap();
        assert!(d < 1e-3, "{d}");
    }

    #[test]
    fn distance_grows_with_mean_shift() {
        let mut rng = Rng::seed_from(2);
        let a = Tensor::randn([300, 6], &mut rng);
        let small = a.map(|v| v + 0.1);
        let large = a.map(|v| v + 2.0);
        let d_small = frechet_distance(&a, &small).unwrap();
        let d_large = frechet_distance(&a, &large).unwrap();
        assert!(d_small < d_large);
        // Pure mean shift of δ in every dim: FD ≈ dim·δ².
        assert!((d_large - 6.0 * 4.0).abs() < 1.5, "{d_large}");
    }

    #[test]
    fn distance_detects_variance_change() {
        let mut rng = Rng::seed_from(3);
        let a = Tensor::randn([500, 4], &mut rng);
        let b = Tensor::randn([500, 4], &mut rng).scale(3.0);
        let d = frechet_distance(&a, &b).unwrap();
        assert!(d > 1.0, "{d}");
    }

    #[test]
    fn symmetric_in_arguments() {
        let mut rng = Rng::seed_from(4);
        let a = Tensor::randn([200, 5], &mut rng);
        let b = Tensor::randn([200, 5], &mut rng).map(|v| v * 1.5 + 0.3);
        let dab = frechet_distance(&a, &b).unwrap();
        let dba = frechet_distance(&b, &a).unwrap();
        assert!((dab - dba).abs() < 0.05 * dab.max(1.0), "{dab} vs {dba}");
    }

    #[test]
    fn extractor_separates_real_from_noise() {
        // Real dataset images vs pure noise must have a large sFID; two
        // disjoint batches of the same dataset must have a small one.
        let ds = Dataset::new(DatasetKind::CifarLike, 3, 16);
        let ext = FeatureExtractor::standard(3);
        let mut rng = Rng::seed_from(5);
        let real_a = ds.batch(128, &mut rng);
        let real_b = ds.batch(128, &mut rng);
        let noise = Tensor::randn([128, 3, 16, 16], &mut rng);
        let d_self = sfid(&ext, &real_a, &real_b).unwrap();
        let d_noise = sfid(&ext, &real_a, &noise).unwrap();
        assert!(
            d_noise > 5.0 * d_self.max(1e-6),
            "self {d_self} vs noise {d_noise}"
        );
    }

    #[test]
    fn mismatched_dims_rejected() {
        let a = Tensor::zeros([10, 4]);
        let b = Tensor::zeros([10, 5]);
        assert!(frechet_distance(&a, &b).is_err());
    }

    #[test]
    fn extractor_is_deterministic() {
        let e1 = FeatureExtractor::standard(3);
        let e2 = FeatureExtractor::standard(3);
        let mut rng = Rng::seed_from(6);
        let x = Tensor::randn([2, 3, 16, 16], &mut rng);
        assert_eq!(e1.features(&x).unwrap(), e2.features(&x).unwrap());
        assert_eq!(e1.dim(), 32);
    }
}
