//! The preconditioned EDM denoiser `D(x, σ)`.

use crate::error::Result;
use crate::model::{RunConfig, UNet};
use crate::schedule::EdmSchedule;
use sqdm_tensor::{arena, Tensor};

/// Scales each batch element of `[N, C, H, W]` by its own scalar. The
/// output spine comes from the arena pool, so inside an [`arena::scope`]
/// this is allocation-free once the pool is warm.
pub(crate) fn scale_per_sample(x: &Tensor, scales: &[f32]) -> Result<Tensor> {
    let (n, c, h, w) = x.shape().as_nchw()?;
    debug_assert_eq!(scales.len(), n);
    let mut ov = arena::take::<f32>(x.len());
    ov.extend_from_slice(x.as_slice());
    let stride = c * h * w;
    for (nn, &s) in scales.iter().enumerate() {
        for v in &mut ov[nn * stride..(nn + 1) * stride] {
            *v *= s;
        }
    }
    Ok(Tensor::from_vec(ov, [n, c, h, w])?)
}

/// A U-Net wrapped in EDM preconditioning.
///
/// `D(x, σ) = c_skip(σ)·x + c_out(σ)·F(c_in(σ)·x, c_noise(σ))`. The wrapper
/// owns the schedule; the network is passed in so that training code can
/// keep mutable access to it between calls.
#[derive(Debug, Clone, Copy)]
pub struct Denoiser {
    /// The EDM schedule supplying the preconditioning coefficients.
    pub schedule: EdmSchedule,
}

impl Denoiser {
    /// Creates a denoiser with the given schedule.
    pub fn new(schedule: EdmSchedule) -> Self {
        Denoiser { schedule }
    }

    /// Evaluates `D(x, σ)` with one σ per batch element.
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn denoise(
        &self,
        net: &mut UNet,
        x: &Tensor,
        sigmas: &[f32],
        rc: &mut RunConfig<'_>,
    ) -> Result<Tensor> {
        let s = &self.schedule;
        // Coefficient vectors come from the arena pool: at steady state a
        // serving loop evaluates `denoise` every round and these four small
        // buffers must not hit the allocator.
        let mut c_in = arena::take::<f32>(sigmas.len());
        c_in.extend(sigmas.iter().map(|&g| s.c_in(g)));
        let mut c_noise = arena::take::<f32>(sigmas.len());
        c_noise.extend(sigmas.iter().map(|&g| s.c_noise(g)));
        let mut c_skip = arena::take::<f32>(sigmas.len());
        c_skip.extend(sigmas.iter().map(|&g| s.c_skip(g)));
        let mut c_out = arena::take::<f32>(sigmas.len());
        c_out.extend(sigmas.iter().map(|&g| s.c_out(g)));

        let xin = scale_per_sample(x, &c_in)?;
        let f = net.forward(&xin, &c_noise, rc)?;
        let mut out = scale_per_sample(x, &c_skip)?;
        out.add_scaled(&scale_per_sample(&f, &c_out)?, 1.0)?;
        arena::recycle(c_in);
        arena::recycle(c_noise);
        arena::recycle(c_skip);
        arena::recycle(c_out);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::UNetConfig;
    use sqdm_tensor::Rng;

    #[test]
    fn scale_per_sample_scales_each_element() {
        let x = Tensor::ones([2, 1, 2, 2]);
        let y = scale_per_sample(&x, &[2.0, 3.0]).unwrap();
        assert_eq!(y.get(&[0, 0, 0, 0]).unwrap(), 2.0);
        assert_eq!(y.get(&[1, 0, 1, 1]).unwrap(), 3.0);
    }

    #[test]
    fn low_noise_denoise_is_near_identity() {
        // At σ → 0, c_skip → 1 and c_out → 0: D(x, σ) ≈ x regardless of the
        // (untrained) network.
        let mut rng = Rng::seed_from(1);
        let mut net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
        let den = Denoiser::new(EdmSchedule::default());
        let x = Tensor::randn([1, 1, 8, 8], &mut rng);
        let y = den
            .denoise(&mut net, &x, &[1e-4], &mut RunConfig::infer())
            .unwrap();
        assert!(x.mse(&y).unwrap() < 1e-4);
    }

    #[test]
    fn high_noise_denoise_suppresses_input() {
        // At σ = σ_max, c_skip ≈ 0: the input contributes almost nothing.
        let mut rng = Rng::seed_from(2);
        let mut net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
        let den = Denoiser::new(EdmSchedule::default());
        let x = Tensor::full([1, 1, 8, 8], 100.0);
        let y = den
            .denoise(&mut net, &x, &[80.0], &mut RunConfig::infer())
            .unwrap();
        // c_skip(80) ≈ 3.9e-5 → the 100-magnitude input is scaled to ≈4e-3.
        assert!(y.abs_max() < 10.0, "max {}", y.abs_max());
    }
}
