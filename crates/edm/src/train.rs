//! EDM training and the SiLU→ReLU finetuning procedure (§III-B).

use crate::dataset::Dataset;
use crate::denoiser::{scale_per_sample, Denoiser};
use crate::error::Result;
use crate::model::{RunConfig, UNet};
use serde::{Deserialize, Serialize};
use sqdm_nn::optim::Adam;
use sqdm_tensor::ops::Activation;
use sqdm_tensor::{Rng, Tensor};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Optimization steps.
    pub steps: usize,
    /// Batch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            steps: 300,
            batch: 8,
            lr: 2e-3,
        }
    }
}

/// Result of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Per-step EDM losses.
    pub losses: Vec<f32>,
}

impl TrainReport {
    /// Mean loss over the first quarter of training.
    pub fn early_loss(&self) -> f32 {
        let k = (self.losses.len() / 4).max(1);
        self.losses[..k].iter().sum::<f32>() / k as f32
    }

    /// Mean loss over the last quarter of training.
    pub fn late_loss(&self) -> f32 {
        let k = (self.losses.len() / 4).max(1);
        let n = self.losses.len();
        self.losses[n - k..].iter().sum::<f32>() / k as f32
    }
}

/// Runs one EDM training step and returns the weighted loss.
///
/// Loss: `E[λ(σ)·‖D(y + σ·n, σ) − y‖²]` with `ln σ ~ N(p_mean, p_std²)`.
///
/// # Errors
///
/// Propagates model errors.
pub fn train_step(
    net: &mut UNet,
    den: &Denoiser,
    batch_clean: &Tensor,
    opt: &mut Adam,
    rng: &mut Rng,
) -> Result<f32> {
    let (n, _, _, _) = batch_clean.shape().as_nchw()?;
    let sigmas: Vec<f32> = (0..n).map(|_| den.schedule.sample_sigma(rng)).collect();
    let noise = Tensor::randn(batch_clean.dims(), rng);
    let mut x = batch_clean.clone();
    x.add_scaled(&scale_per_sample(&noise, &sigmas)?, 1.0)?;

    let d = den.denoise(net, &x, &sigmas, &mut RunConfig::train())?;
    let diff = d.sub(batch_clean)?;
    let weights: Vec<f32> = sigmas
        .iter()
        .map(|&s| den.schedule.loss_weight(s))
        .collect();
    let weighted = scale_per_sample(&diff.mul(&diff)?, &weights)?;
    let loss = weighted.mean();

    // dL/dD = 2·λ(σ)·(D − y) / total_elems ; dL/dF = c_out(σ)·dL/dD.
    let total = diff.len() as f32;
    let c_out: Vec<f32> = sigmas.iter().map(|&s| den.schedule.c_out(s)).collect();
    let g = scale_per_sample(&scale_per_sample(&diff, &weights)?, &c_out)?.scale(2.0 / total);
    net.backward(&g)?;
    let mut params = net.params_mut();
    opt.step(&mut params);
    Ok(loss)
}

/// Trains a network on a dataset from scratch.
///
/// # Errors
///
/// Propagates model errors.
pub fn train(
    net: &mut UNet,
    den: &Denoiser,
    dataset: &Dataset,
    cfg: TrainConfig,
    rng: &mut Rng,
) -> Result<TrainReport> {
    let mut opt = Adam::new(cfg.lr);
    let mut losses = Vec::with_capacity(cfg.steps);
    for _ in 0..cfg.steps {
        let batch = dataset.batch(cfg.batch, rng);
        losses.push(train_step(net, den, &batch, &mut opt, rng)?);
    }
    Ok(TrainReport { losses })
}

/// The paper's §III-B procedure: swap every SiLU for ReLU, then finetune.
///
/// The paper reports the finetune budget as <10% of pre-training; callers
/// typically pass a `TrainConfig` with `steps` scaled accordingly, though a
/// larger budget is accepted (the tiny models here benefit from a bit more).
///
/// # Errors
///
/// Propagates model errors.
pub fn finetune_relu(
    net: &mut UNet,
    den: &Denoiser,
    dataset: &Dataset,
    cfg: TrainConfig,
    rng: &mut Rng,
) -> Result<TrainReport> {
    net.set_activation(Activation::Relu);
    train(net, den, dataset, cfg, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetKind;
    use crate::model::UNetConfig;
    use crate::schedule::EdmSchedule;

    fn quick_setup() -> (UNet, Denoiser, Dataset, Rng) {
        let mut rng = Rng::seed_from(42);
        let net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
        let den = Denoiser::new(EdmSchedule::default());
        let ds = Dataset::new(DatasetKind::CifarLike, 1, 8);
        (net, den, ds, rng)
    }

    #[test]
    fn loss_decreases_during_training() {
        let (mut net, den, ds, mut rng) = quick_setup();
        let report = train(
            &mut net,
            &den,
            &ds,
            TrainConfig {
                steps: 60,
                batch: 4,
                lr: 3e-3,
            },
            &mut rng,
        )
        .unwrap();
        assert!(
            report.late_loss() < report.early_loss(),
            "early {} late {}",
            report.early_loss(),
            report.late_loss()
        );
        assert!(report.losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn finetune_switches_activation_and_trains() {
        let (mut net, den, ds, mut rng) = quick_setup();
        train(
            &mut net,
            &den,
            &ds,
            TrainConfig {
                steps: 20,
                batch: 4,
                lr: 3e-3,
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(net.activation(), Activation::Silu);
        let report = finetune_relu(
            &mut net,
            &den,
            &ds,
            TrainConfig {
                steps: 30,
                batch: 4,
                lr: 2e-3,
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(net.activation(), Activation::Relu);
        // Finetuning recovers: final loss comparable to or better than the
        // loss right after the swap.
        assert!(report.late_loss() <= report.early_loss() * 1.5);
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let cfg = TrainConfig {
            steps: 5,
            batch: 2,
            lr: 1e-3,
        };
        let run = |seed: u64| -> Vec<f32> {
            let mut rng = Rng::seed_from(seed);
            let mut net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
            let den = Denoiser::new(EdmSchedule::default());
            let ds = Dataset::new(DatasetKind::CifarLike, 1, 8);
            train(&mut net, &den, &ds, cfg, &mut rng).unwrap().losses
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
