//! Synthetic image distributions standing in for the paper's datasets.
//!
//! The paper evaluates on CIFAR-10, AFHQv2, FFHQ and ImageNet. Those
//! datasets (and the pre-trained checkpoints that go with them) are not
//! available here, so each is replaced by a *procedural* distribution with a
//! loosely analogous structure: smooth multi-modal images with spatial
//! correlations, so that a small EDM can actually learn them and
//! quantization error shows up as measurable distribution shift. What
//! matters for the reproduction is not photorealism but that the four
//! distributions differ in diversity and difficulty, giving four distinct
//! columns in Tables I/II.

use serde::{Deserialize, Serialize};
use sqdm_tensor::{Rng, Tensor};

/// The four synthetic stand-in distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Stand-in for CIFAR-10: small colored blob scenes.
    CifarLike,
    /// Stand-in for AFHQv2: centered "face" compositions (ellipse + eyes).
    AfhqLike,
    /// Stand-in for FFHQ: vertically symmetric portrait-like gradients.
    FfhqLike,
    /// Stand-in for ImageNet: a high-diversity texture mixture (hardest).
    ImageNetLike,
}

impl DatasetKind {
    /// All four datasets in the paper's column order.
    pub const ALL: [DatasetKind; 4] = [
        DatasetKind::CifarLike,
        DatasetKind::AfhqLike,
        DatasetKind::FfhqLike,
        DatasetKind::ImageNetLike,
    ];

    /// Paper-style display name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::CifarLike => "CIFAR-10(syn)",
            DatasetKind::AfhqLike => "AFHQv2(syn)",
            DatasetKind::FfhqLike => "FFHQ(syn)",
            DatasetKind::ImageNetLike => "ImageNet(syn)",
        }
    }
}

/// A synthetic dataset: a deterministic sampler over procedural images.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dataset {
    /// Which distribution to draw from.
    pub kind: DatasetKind,
    /// Image channels.
    pub channels: usize,
    /// Square image extent.
    pub size: usize,
}

impl Dataset {
    /// Creates a dataset sampler.
    pub fn new(kind: DatasetKind, channels: usize, size: usize) -> Self {
        Dataset {
            kind,
            channels,
            size,
        }
    }

    /// Draws one image `[C, S, S]` with values in `[-1, 1]`.
    pub fn sample(&self, rng: &mut Rng) -> Tensor {
        let (c, s) = (self.channels, self.size);
        let mut img = vec![0.0f32; c * s * s];
        match self.kind {
            DatasetKind::CifarLike => self.blobs(&mut img, rng),
            DatasetKind::AfhqLike => self.face(&mut img, rng),
            DatasetKind::FfhqLike => self.portrait(&mut img, rng),
            DatasetKind::ImageNetLike => self.texture_mixture(&mut img, rng),
        }
        for v in &mut img {
            *v = v.clamp(-1.0, 1.0);
        }
        Tensor::from_vec(img, [c, s, s]).expect("buffer sized to shape")
    }

    /// Draws a batch `[N, C, S, S]`.
    pub fn batch(&self, n: usize, rng: &mut Rng) -> Tensor {
        let (c, s) = (self.channels, self.size);
        let mut out = Tensor::zeros([n, c, s, s]);
        let stride = c * s * s;
        for i in 0..n {
            let img = self.sample(rng);
            out.as_mut_slice()[i * stride..(i + 1) * stride].copy_from_slice(img.as_slice());
        }
        out
    }

    fn set(&self, img: &mut [f32], ch: usize, y: usize, x: usize, v: f32) {
        let s = self.size;
        img[ch * s * s + y * s + x] = v;
    }

    fn add(&self, img: &mut [f32], ch: usize, y: usize, x: usize, v: f32) {
        let s = self.size;
        img[ch * s * s + y * s + x] += v;
    }

    /// Gradient background + 2–3 colored Gaussian blobs.
    fn blobs(&self, img: &mut [f32], rng: &mut Rng) {
        let (c, s) = (self.channels, self.size);
        let gdir = rng.uniform_in(-1.0, 1.0);
        let gbase: Vec<f32> = (0..c).map(|_| rng.uniform_in(-0.5, 0.2)).collect();
        for (ch, &gb) in gbase.iter().enumerate() {
            for y in 0..s {
                for x in 0..s {
                    let t = (x as f32 + gdir * y as f32) / s as f32;
                    self.set(img, ch, y, x, gb + 0.3 * t);
                }
            }
        }
        let nblobs = 2 + rng.index(2);
        for _ in 0..nblobs {
            let (cy, cx) = (rng.uniform_in(0.2, 0.8), rng.uniform_in(0.2, 0.8));
            let r = rng.uniform_in(0.1, 0.25);
            let color: Vec<f32> = (0..c).map(|_| rng.uniform_in(-0.9, 0.9)).collect();
            for (ch, &col) in color.iter().enumerate() {
                for y in 0..s {
                    for x in 0..s {
                        let dy = y as f32 / s as f32 - cy;
                        let dx = x as f32 / s as f32 - cx;
                        let d2 = (dy * dy + dx * dx) / (r * r);
                        self.add(img, ch, y, x, col * (-d2).exp());
                    }
                }
            }
        }
    }

    /// Centered ellipse "head" with two darker "eyes".
    fn face(&self, img: &mut [f32], rng: &mut Rng) {
        let (c, s) = (self.channels, self.size);
        let bg: Vec<f32> = (0..c).map(|_| rng.uniform_in(-0.8, -0.2)).collect();
        let fur: Vec<f32> = (0..c).map(|_| rng.uniform_in(0.0, 0.8)).collect();
        let (ry, rx) = (rng.uniform_in(0.3, 0.42), rng.uniform_in(0.25, 0.4));
        let eye_y = rng.uniform_in(0.38, 0.48);
        let eye_dx = rng.uniform_in(0.12, 0.2);
        for ch in 0..c {
            for y in 0..s {
                for x in 0..s {
                    let fy = y as f32 / s as f32 - 0.5;
                    let fx = x as f32 / s as f32 - 0.5;
                    let inside = (fy / ry).powi(2) + (fx / rx).powi(2);
                    let mut v = if inside < 1.0 { fur[ch] } else { bg[ch] };
                    // Eyes: two dark dots.
                    for side in [-1.0f32, 1.0] {
                        let dy = y as f32 / s as f32 - eye_y;
                        let dx = x as f32 / s as f32 - (0.5 + side * eye_dx);
                        if dy * dy + dx * dx < 0.003 {
                            v = -0.9;
                        }
                    }
                    self.set(img, ch, y, x, v);
                }
            }
        }
    }

    /// Vertically symmetric smooth portrait-like composition.
    fn portrait(&self, img: &mut [f32], rng: &mut Rng) {
        let (c, s) = (self.channels, self.size);
        let tone: Vec<f32> = (0..c).map(|_| rng.uniform_in(-0.2, 0.6)).collect();
        let hair: Vec<f32> = (0..c).map(|_| rng.uniform_in(-0.9, -0.3)).collect();
        let hairline = rng.uniform_in(0.15, 0.35);
        let chin = rng.uniform_in(0.7, 0.9);
        let width = rng.uniform_in(0.25, 0.4);
        for ch in 0..c {
            for y in 0..s {
                for x in 0..s {
                    let fy = y as f32 / s as f32;
                    // Pixel-center coordinates so even sizes mirror exactly.
                    let fx = ((x as f32 + 0.5) / s as f32 - 0.5).abs();
                    let v = if fy < hairline || fx > width + 0.05 * (fy - 0.5).abs() {
                        hair[ch]
                    } else if fy < chin {
                        tone[ch] + 0.15 * (1.0 - fy)
                    } else {
                        hair[ch] * 0.5
                    };
                    self.set(img, ch, y, x, v);
                }
            }
        }
    }

    /// High-diversity mixture of texture families.
    fn texture_mixture(&self, img: &mut [f32], rng: &mut Rng) {
        let mode = rng.index(4);
        match mode {
            0 => self.blobs(img, rng),
            1 => {
                // Checkerboard with random period and phase.
                let (c, s) = (self.channels, self.size);
                let period = 2 + rng.index(4);
                let phase = rng.index(period);
                let hi: Vec<f32> = (0..c).map(|_| rng.uniform_in(0.2, 0.9)).collect();
                let lo: Vec<f32> = (0..c).map(|_| rng.uniform_in(-0.9, -0.2)).collect();
                for ch in 0..c {
                    for y in 0..s {
                        for x in 0..s {
                            let on = ((x + phase) / period + y / period).is_multiple_of(2);
                            self.set(img, ch, y, x, if on { hi[ch] } else { lo[ch] });
                        }
                    }
                }
            }
            2 => {
                // Sinusoidal plaid.
                let (c, s) = (self.channels, self.size);
                let (fx, fy) = (rng.uniform_in(0.5, 3.0), rng.uniform_in(0.5, 3.0));
                let ph = rng.uniform_in(0.0, std::f32::consts::TAU);
                for ch in 0..c {
                    let amp = rng.uniform_in(0.4, 0.9);
                    for y in 0..s {
                        for x in 0..s {
                            let v = amp
                                * ((fx * std::f32::consts::TAU * x as f32 / s as f32 + ph).sin()
                                    * (fy * std::f32::consts::TAU * y as f32 / s as f32).cos());
                            self.set(img, ch, y, x, v);
                        }
                    }
                }
            }
            _ => {
                // Diagonal stripes.
                let (c, s) = (self.channels, self.size);
                let period = 2 + rng.index(5);
                let hi: Vec<f32> = (0..c).map(|_| rng.uniform_in(0.1, 0.9)).collect();
                let lo: Vec<f32> = (0..c).map(|_| rng.uniform_in(-0.9, -0.1)).collect();
                for ch in 0..c {
                    for y in 0..s {
                        for x in 0..s {
                            let on = ((x + y) / period).is_multiple_of(2);
                            self.set(img, ch, y, x, if on { hi[ch] } else { lo[ch] });
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqdm_tensor::stats::Moments;

    #[test]
    fn samples_in_range_and_deterministic() {
        for kind in DatasetKind::ALL {
            let ds = Dataset::new(kind, 3, 16);
            let mut r1 = Rng::seed_from(7);
            let mut r2 = Rng::seed_from(7);
            let a = ds.sample(&mut r1);
            let b = ds.sample(&mut r2);
            assert_eq!(a, b, "{kind:?} not deterministic");
            assert_eq!(a.dims(), &[3, 16, 16]);
            assert!(a.max() <= 1.0 && a.min() >= -1.0, "{kind:?} out of range");
        }
    }

    #[test]
    fn batch_shape() {
        let ds = Dataset::new(DatasetKind::CifarLike, 1, 8);
        let mut rng = Rng::seed_from(1);
        let b = ds.batch(5, &mut rng);
        assert_eq!(b.dims(), &[5, 1, 8, 8]);
    }

    #[test]
    fn distributions_are_distinct() {
        // Mean images across the four datasets should differ measurably.
        let mut means = Vec::new();
        for kind in DatasetKind::ALL {
            let ds = Dataset::new(kind, 1, 8);
            let mut rng = Rng::seed_from(11);
            let b = ds.batch(64, &mut rng);
            means.push(Moments::of(&b).mean);
        }
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(
                    (means[i] - means[j]).abs() > 1e-4,
                    "datasets {i} and {j} have identical means"
                );
            }
        }
    }

    #[test]
    fn imagenet_like_is_most_diverse() {
        // Per-pixel variance across samples should be highest for the
        // texture mixture (it has four distinct modes).
        let pixel_var = |kind: DatasetKind| -> f64 {
            let ds = Dataset::new(kind, 1, 8);
            let mut rng = Rng::seed_from(13);
            let b = ds.batch(128, &mut rng);
            // Variance of pixel (0, 4, 4) across the batch.
            let vals: Vec<f32> = (0..128).map(|i| b.get(&[i, 0, 4, 4]).unwrap()).collect();
            let m = vals.iter().sum::<f32>() as f64 / 128.0;
            vals.iter().map(|&v| (v as f64 - m).powi(2)).sum::<f64>() / 128.0
        };
        let vi = pixel_var(DatasetKind::ImageNetLike);
        let vf = pixel_var(DatasetKind::FfhqLike);
        assert!(vi > vf, "imagenet {vi} vs ffhq {vf}");
    }

    #[test]
    fn ffhq_like_is_symmetric() {
        let ds = Dataset::new(DatasetKind::FfhqLike, 1, 16);
        let mut rng = Rng::seed_from(3);
        let img = ds.sample(&mut rng);
        for y in 0..16 {
            for x in 0..8 {
                let l = img.get(&[0, y, x]).unwrap();
                let r = img.get(&[0, y, 15 - x]).unwrap();
                assert_eq!(l, r, "asymmetry at ({y},{x})");
            }
        }
    }
}
