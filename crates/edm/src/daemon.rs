//! `sqdmd`: the serving stack behind a real network boundary.
//!
//! A std-only HTTP/1.1 daemon over [`std::net::TcpListener`] exposing the
//! registry serving loop on five endpoints (see [`crate::wire`] for the
//! endpoint table and body types). Threading follows the
//! `sqdm_tensor::parallel` idioms — named threads coordinating through a
//! `Mutex` + `Condvar` pair, workers parked on a condvar instead of
//! spinning:
//!
//! * `sqdmd-serve` — the serve loop. Each iteration is one tick of the
//!   shared virtual clock: fair-share admission at the step boundary, one
//!   batched Heun round per non-idle model, retirement of exhausted
//!   streams. The whole loop runs inside one [`arena::scope`] so the
//!   steady state keeps the library's zero-allocation behavior.
//! * `sqdmd-listener` — accepts connections and hands each to a detached
//!   `sqdmd-conn` thread (thread-per-connection; requests are tiny and
//!   `Connection: close`).
//!
//! # Determinism contract
//!
//! The wall clock decides only *when* requests are admitted, never what
//! they compute: every served image is bitwise identical to the solo
//! [`crate::sample`] run with the same `(seed, steps)` on the same model,
//! whatever the batch composition, `SQDM_EXEC` mode, or `SQDM_THREADS`.
//! The socket-level e2e suite pins this over a real TCP connection.
//!
//! # Drain semantics
//!
//! `POST /v1/drain` flips the daemon into draining mode: new submissions
//! (and registrations) are rejected with 503, requests already queued or
//! in flight complete their remaining denoise rounds, and the drain
//! response is sent only once the last stream has retired — carrying the
//! final lifetime stats. The listener itself stays up (status and stats
//! remain queryable) until the embedder calls [`DaemonHandle::shutdown`];
//! the `sqdmd` binary does so as soon as [`DaemonHandle::wait_drained`]
//! returns.

use crate::denoiser::Denoiser;
use crate::error::EdmError;
use crate::cost::CostModelConfig;
use crate::model::{UNet, UNetConfig};
use crate::registry::{ModelId, ModelRegistry};
use crate::schedule::EdmSchedule;
use crate::serve::{
    AdmissionEngine, AdmissionPolicy, Admitted, Backpressure, BackpressurePolicy, BatchSampler,
    InflightRef, QueueBound, RequestStats, ScheduledRequest, ServeRequest, ServeStats, Stream,
};
use crate::wire::{self, json};
use serde::Serialize;
use sqdm_accel::PowerProfile;
use sqdm_quant::{BlockPrecision, ExecMode, PrecisionAssignment, QuantFormat};
use sqdm_tensor::{arena, Rng};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Largest request body the daemon accepts; bigger gets 413 up front.
const MAX_BODY: usize = 1 << 20;
/// Largest request head (request line + headers) before the read aborts
/// with 400.
const MAX_HEAD: usize = 8 * 1024;
/// Per-connection socket I/O deadline: a stalled peer frees its thread.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Configuration of a daemon instance.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Bind address; port 0 picks an ephemeral port (its resolution is
    /// available from [`DaemonHandle::addr`]).
    pub addr: String,
    /// Per-model in-flight batch capacity (must be at least 1).
    pub max_batch: usize,
    /// Artificial pause between serve-loop ticks, slept **outside** the
    /// state lock. Zero (the default) for production; tests use it to
    /// widen the drain window deterministically.
    pub round_delay: Duration,
    /// Bound on each model's pending queue. `None` (the default) admits
    /// unboundedly as before; `Some(n)` refuses the `n+1`-th queued
    /// submission with HTTP 429 until admission makes room.
    pub max_pending: Option<usize>,
    /// Simulated per-window energy budget in pJ (`--energy-budget`).
    /// `None` (the default) keeps fair-share admission with the no-op
    /// cost model — bitwise identical to the previous daemon behavior.
    /// `Some(pj)` switches every model's engine to
    /// [`AdmissionPolicy::EnergyCapped`] over the accelerator-backed cost
    /// model under the `Efficiency` throttle profile, with window length
    /// [`ENERGY_WINDOW_STEPS`].
    pub energy_budget: Option<u64>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:0".into(),
            max_batch: 4,
            round_delay: Duration::ZERO,
            max_pending: None,
            energy_budget: None,
        }
    }
}

/// Admission window of the daemon's energy-capped mode, in virtual steps:
/// `--energy-budget` is spent per window of this many scheduler ticks.
pub const ENERGY_WINDOW_STEPS: u32 = 8;

/// Lifecycle of one submitted request.
enum ReqState {
    /// Accepted, waiting for batch capacity.
    Queued,
    /// Admitted into its model's in-flight batch.
    Running,
    /// Completed; the image is held in transport form.
    Done(wire::ImagePayload),
    /// Its model's round failed; the reason is kept for status queries.
    Failed(String),
}

/// One entry in the daemon-lifetime request table.
struct RequestEntry {
    model: ModelId,
    state: ReqState,
}

/// Admission metadata for one in-flight stream, parallel to
/// `ModelServe::streams`.
struct StreamMeta {
    arrival_step: usize,
    admitted_step: usize,
    /// Daemon-lifetime submission index (policy tie-breaker).
    token: usize,
}

/// Continuous-batching state of one resident model.
struct ModelServe {
    sampler: BatchSampler,
    mcfg: UNetConfig,
    precision_label: String,
    /// The shared admission path: fair-share policy over a pending queue
    /// that is bounded when the daemon was configured with `max_pending`.
    engine: AdmissionEngine,
    /// Monotone per-model submission counter feeding the engine's
    /// deterministic tie-breaks.
    next_token: usize,
    /// In-flight streams (at most `max_batch`).
    streams: Vec<Stream>,
    meta: Vec<StreamMeta>,
    /// Lifetime stats; request records are appended at retirement, so
    /// aggregates and percentiles cover completed requests only.
    stats: ServeStats,
}

/// Everything behind the mutex.
struct ServerState {
    registry: ModelRegistry,
    serving: Vec<ModelServe>,
    /// Every request ever submitted, keyed by id (also the duplicate-id
    /// guard).
    requests: BTreeMap<u64, RequestEntry>,
    /// Shared virtual clock, one tick per serve-loop iteration with work.
    clock: usize,
    /// Total rounds executed across models.
    rounds: usize,
    draining: bool,
    shutdown: bool,
    max_batch: usize,
    round_delay: Duration,
    /// Pending-queue bound applied to every model's engine.
    max_pending: Option<usize>,
    /// Per-window energy budget applied to every model's engine.
    energy_budget: Option<u64>,
    /// Lifetime count of submissions refused with 429.
    rejected: u64,
}

impl ServerState {
    /// No request queued or in flight on any model.
    fn is_idle(&self) -> bool {
        self.serving
            .iter()
            .all(|m| !m.engine.has_work() && m.streams.is_empty())
    }

    /// One tick of the virtual clock: admission, one round per non-idle
    /// model, retirement. Called with work present.
    fn tick(&mut self) {
        let ServerState {
            registry,
            serving,
            requests,
            clock,
            rounds,
            max_batch,
            ..
        } = self;

        // Step-boundary admission through the shared engine (fair-share
        // policy, same path as `Scheduler` and `RegistryScheduler`).
        for ms in serving.iter_mut() {
            if !ms.engine.has_work() {
                continue;
            }
            let inflight: Vec<InflightRef> = ms
                .streams
                .iter()
                .zip(&ms.meta)
                .enumerate()
                .map(|(k, (s, meta))| InflightRef {
                    stream_key: k,
                    scheduled: ScheduledRequest::new(s.request, meta.arrival_step),
                    submit_index: meta.token,
                    remaining: s.request.steps - s.cursor,
                })
                .collect();
            let actions = ms.engine.boundary(&inflight, *max_batch, *clock, 0);
            // Both daemon policies (fair share and energy-capped) never
            // park — parking would invalidate the swap_remove retirement
            // indices below.
            debug_assert!(actions.park.is_empty(), "daemon policies never preempt");
            for admitted in actions.admit {
                let Admitted::Fresh {
                    scheduled: sr,
                    submit_index,
                } = admitted
                else {
                    debug_assert!(false, "daemon policies never park, so nothing resumes");
                    continue;
                };
                // Step budgets were validated at submit; a failure here
                // is recorded instead of crashing the loop.
                match ms.sampler.make_stream(&ms.mcfg, &sr.request) {
                    Ok(stream) => {
                        if let Some(entry) = requests.get_mut(&sr.request.id) {
                            entry.state = ReqState::Running;
                        }
                        ms.streams.push(stream);
                        ms.meta.push(StreamMeta {
                            arrival_step: sr.arrival_step,
                            admitted_step: *clock,
                            token: submit_index,
                        });
                    }
                    Err(e) => {
                        if let Some(entry) = requests.get_mut(&sr.request.id) {
                            entry.state = ReqState::Failed(e.to_string());
                        }
                    }
                }
            }
        }

        // One batched Heun round per model with in-flight streams.
        for (m, ms) in serving.iter_mut().enumerate() {
            if ms.streams.is_empty() {
                continue;
            }
            let Some(model) = registry.model_mut(m) else {
                continue;
            };
            let active: Vec<usize> = (0..ms.streams.len()).collect();
            let (net, assignment, packs) = model.serve_parts();
            let t0 = Instant::now();
            match ms
                .sampler
                .round(net, &mut ms.streams, &active, assignment, packs)
            {
                Ok(()) => {
                    ms.stats
                        .step_latency_ns
                        .push(t0.elapsed().as_nanos() as u64);
                    ms.stats.batch_occupancy.push(active.len());
                    ms.stats.queue_depth.push(ms.engine.queue_len());
                    let (round_pj, round_occ) = ms.engine.round_accounting(active.len());
                    ms.stats.round_energy_pj.push(round_pj);
                    ms.stats.round_occupancy.push(round_occ);
                    ms.stats.rounds += 1;
                    *rounds += 1;
                }
                Err(e) => {
                    // Fail this model's in-flight requests; other models
                    // and future submissions keep serving.
                    let msg = e.to_string();
                    ms.meta.clear();
                    for stream in std::mem::take(&mut ms.streams) {
                        if let Some(entry) = requests.get_mut(&stream.request.id) {
                            entry.state = ReqState::Failed(msg.clone());
                        }
                    }
                }
            }
        }

        *clock += 1;

        // Retire exhausted streams: record stats, stash the image bits.
        for (m, ms) in serving.iter_mut().enumerate() {
            let mut k = 0;
            while k < ms.streams.len() {
                if ms.streams[k].cursor < ms.streams[k].request.steps {
                    k += 1;
                    continue;
                }
                let stream = ms.streams.swap_remove(k);
                let meta = ms.meta.swap_remove(k);
                let req = stream.request;
                let out = stream.into_output();
                ms.stats.requests.push(RequestStats {
                    id: req.id,
                    tenant: req.tenant,
                    arrival_step: meta.arrival_step,
                    admitted_step: meta.admitted_step,
                    completed_step: *clock,
                    queue_delay: meta.admitted_step - meta.arrival_step,
                    steps_in_batch: *clock - meta.admitted_step,
                    parked_steps: 0,
                    latency: *clock - meta.arrival_step,
                });
                ms.stats.final_step = *clock;
                requests.insert(
                    req.id,
                    RequestEntry {
                        model: m,
                        state: ReqState::Done(wire::ImagePayload {
                            dims: out.image.dims().to_vec(),
                            bits: out.image.as_slice().iter().map(|v| v.to_bits()).collect(),
                        }),
                    },
                );
            }
        }
    }
}

/// The mutex and the two condvars every daemon thread coordinates on.
struct Shared {
    state: Mutex<ServerState>,
    /// Work arrived (submit), or the lifecycle changed (drain/shutdown):
    /// wakes the serve loop.
    work: Condvar,
    /// Progress was made (tick finished, queues went idle): wakes drain
    /// and `wait_drained` waiters.
    done: Condvar,
}

impl Shared {
    /// Locks the state, recovering from a poisoned mutex — a panicking
    /// connection thread must never wedge the daemon.
    fn lock(&self) -> MutexGuard<'_, ServerState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wait_work<'a>(&self, guard: MutexGuard<'a, ServerState>) -> MutexGuard<'a, ServerState> {
        self.work.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    fn wait_done<'a>(&self, guard: MutexGuard<'a, ServerState>) -> MutexGuard<'a, ServerState> {
        self.done.wait(guard).unwrap_or_else(|e| e.into_inner())
    }
}

/// Handle to a running daemon: its resolved address plus lifecycle
/// control. Dropping the handle shuts the daemon down.
pub struct DaemonHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    listener_thread: Option<JoinHandle<()>>,
    serve_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for DaemonHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DaemonHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl DaemonHandle {
    /// The daemon's resolved bind address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until a `/v1/drain` has been accepted **and** every queued
    /// or in-flight request has completed (or the daemon is shut down).
    pub fn wait_drained(&self) {
        let mut st = self.shared.lock();
        while !(st.shutdown || st.draining && st.is_idle()) {
            st = self.shared.wait_done(st);
        }
    }

    /// Stops the listener and the serve loop and joins both threads.
    /// In-flight connection threads finish their current response.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
            self.shared.work.notify_all();
            self.shared.done.notify_all();
        }
        // Kick the listener out of its blocking accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.listener_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.serve_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds the listener and starts the serve loop; returns once the daemon
/// is accepting connections.
///
/// # Errors
///
/// Returns the bind error, or `InvalidInput` for a zero `max_batch`.
pub fn spawn(config: DaemonConfig) -> std::io::Result<DaemonHandle> {
    if config.max_batch == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "daemon max_batch must be at least 1",
        ));
    }
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        state: Mutex::new(ServerState {
            registry: ModelRegistry::new(),
            serving: Vec::new(),
            requests: BTreeMap::new(),
            clock: 0,
            rounds: 0,
            draining: false,
            shutdown: false,
            max_batch: config.max_batch,
            round_delay: config.round_delay,
            max_pending: config.max_pending,
            energy_budget: config.energy_budget,
            rejected: 0,
        }),
        work: Condvar::new(),
        done: Condvar::new(),
    });

    let serve_shared = Arc::clone(&shared);
    let serve_thread = std::thread::Builder::new()
        .name("sqdmd-serve".into())
        .spawn(move || serve_loop(&serve_shared))?;

    let accept_shared = Arc::clone(&shared);
    let listener_thread = std::thread::Builder::new()
        .name("sqdmd-listener".into())
        .spawn(move || listener_loop(&listener, &accept_shared))?;

    Ok(DaemonHandle {
        addr,
        shared,
        listener_thread: Some(listener_thread),
        serve_thread: Some(serve_thread),
    })
}

/// The serve loop: tick while work exists, park on the work condvar while
/// idle. One arena scope for the whole lifetime keeps steady-state rounds
/// allocation-free.
fn serve_loop(shared: &Shared) {
    arena::scope(|| {
        let mut st = shared.lock();
        loop {
            if st.shutdown {
                break;
            }
            if st.is_idle() {
                // Idle is what drain waiters wait for.
                shared.done.notify_all();
                st = shared.wait_work(st);
                continue;
            }
            st.tick();
            shared.done.notify_all();
            let delay = st.round_delay;
            if !delay.is_zero() {
                drop(st);
                std::thread::sleep(delay);
                st = shared.lock();
            }
        }
    });
}

/// Accepts connections until shutdown; each goes to a detached
/// thread-per-connection handler.
fn listener_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.lock().shutdown {
            break;
        }
        let Ok(stream) = conn else { continue };
        let conn_shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("sqdmd-conn".into())
            .spawn(move || handle_connection(stream, &conn_shared));
    }
}

// ---------------------------------------------------------------------
// HTTP layer.
// ---------------------------------------------------------------------

struct HttpRequest {
    method: String,
    path: String,
    body: String,
}

#[derive(Debug)]
struct HttpResponse {
    status: u16,
    body: String,
}

/// An error response with a JSON [`wire::ErrorReply`] body.
fn error_response(status: u16, message: impl Into<String>) -> HttpResponse {
    let reply = wire::ErrorReply {
        error: message.into(),
    };
    HttpResponse {
        status,
        body: json::to_string(&reply).unwrap_or_else(|_| "{\"error\":\"internal\"}".into()),
    }
}

/// A 200 response with a JSON body.
fn ok_json<T: Serialize>(value: &T) -> HttpResponse {
    match json::to_string(value) {
        Ok(body) => HttpResponse { status: 200, body },
        Err(e) => error_response(500, format!("response encoding failed: {e}")),
    }
}

/// Maps a library error onto a wire status: the duplicate-id
/// [`EdmError::Config`] becomes 409 Conflict, other config errors are the
/// caller's fault (400), a full pending queue is 429 Too Many Requests,
/// anything else is the server's fault (500).
fn error_status(e: &EdmError) -> u16 {
    match e {
        EdmError::Config { reason } if reason.contains("duplicate request id") => 409,
        EdmError::Config { .. } => 400,
        EdmError::Overloaded { .. } => 429,
        _ => 500,
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// One connection: parse, route, respond, close. Panics in a handler are
/// caught and answered with 500 — the daemon must never wedge or die on a
/// bad request.
fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let response = match read_request(&mut stream) {
        Err(resp) => resp,
        Ok(req) => std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| route(shared, &req)))
            .unwrap_or_else(|_| error_response(500, "internal error handling request")),
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason_phrase(response.status),
        response.body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(response.body.as_bytes());
    let _ = stream.flush();
}

/// Reads and parses one HTTP/1.1 request, with hard caps on head and body
/// size. Malformed or truncated input maps to a clean 4xx.
fn read_request(stream: &mut TcpStream) -> Result<HttpRequest, HttpResponse> {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_terminator(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err(error_response(400, "request head too large"));
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| error_response(400, format!("failed to read request: {e}")))?;
        if n == 0 {
            return Err(error_response(400, "truncated request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| error_response(400, "request head is not valid utf-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/") {
        return Err(error_response(400, "malformed request line"));
    }

    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse::<usize>()
                .map_err(|_| error_response(400, "invalid content-length"))?;
        }
    }
    if content_length > MAX_BODY {
        return Err(error_response(
            413,
            format!("request body of {content_length} bytes exceeds the {MAX_BODY} byte limit"),
        ));
    }

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream
            .read(&mut chunk)
            .map_err(|e| error_response(400, format!("failed to read request body: {e}")))?;
        if n == 0 {
            return Err(error_response(400, "truncated request body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body)
        .map_err(|_| error_response(400, "request body is not valid utf-8"))?;
    Ok(HttpRequest { method, path, body })
}

/// Position of the `\r\n\r\n` head terminator, if present.
fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn route(shared: &Arc<Shared>, req: &HttpRequest) -> HttpResponse {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/models") => handle_register(shared, &req.body),
        ("POST", "/v1/submit") => handle_submit(shared, &req.body),
        ("GET", "/v1/stats") => handle_stats(shared),
        ("POST", "/v1/drain") => handle_drain(shared),
        (_, "/v1/models" | "/v1/submit" | "/v1/stats" | "/v1/drain") => error_response(
            405,
            format!("method {} not allowed on {}", req.method, req.path),
        ),
        (method, path) if path.starts_with("/v1/status/") => {
            if method != "GET" {
                return error_response(405, format!("method {method} not allowed on {path}"));
            }
            match path["/v1/status/".len()..].parse::<u64>() {
                Ok(id) => handle_status(shared, id),
                Err(_) => error_response(400, "request id must be an unsigned integer"),
            }
        }
        (_, path) => error_response(404, format!("unknown path {path}")),
    }
}

/// Resolves a wire precision label into an assignment (None = fp32) and
/// its canonical echo form. A bare `"int8"` picks up the daemon's
/// `SQDM_EXEC` execution mode.
fn parse_precision(label: &str) -> Result<(Option<PrecisionAssignment>, String), HttpResponse> {
    let int8 = |mode: ExecMode| {
        PrecisionAssignment::uniform(
            crate::model::block_ids::COUNT,
            BlockPrecision::uniform(QuantFormat::int8()),
            "INT8",
        )
        .with_mode(mode)
    };
    let resolved = |mode: ExecMode| match mode {
        ExecMode::FakeQuant => "int8-fakequant".to_string(),
        ExecMode::NativeInt => "int8-native".to_string(),
    };
    match label {
        "fp32" | "none" => Ok((None, "fp32".into())),
        "int8" => {
            let mode = ExecMode::from_env();
            Ok((Some(int8(mode)), resolved(mode)))
        }
        "int8-fakequant" => Ok((
            Some(int8(ExecMode::FakeQuant)),
            resolved(ExecMode::FakeQuant),
        )),
        "int8-native" => Ok((
            Some(int8(ExecMode::NativeInt)),
            resolved(ExecMode::NativeInt),
        )),
        other => Err(error_response(
            400,
            format!(
                "unknown precision {other:?}; expected fp32, int8, int8-fakequant, or int8-native"
            ),
        )),
    }
}

fn handle_register(shared: &Arc<Shared>, body: &str) -> HttpResponse {
    let req: wire::RegisterModel = match json::from_str(body) {
        Ok(r) => r,
        Err(e) => return error_response(400, format!("invalid register body: {e}")),
    };
    let mcfg = match req.preset.as_str() {
        "micro" => UNetConfig::micro(),
        "default" => UNetConfig::default(),
        other => {
            return error_response(
                400,
                format!("unknown preset {other:?}; expected micro or default"),
            )
        }
    };
    let (assignment, precision) = match parse_precision(&req.precision) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    // Weight init happens outside the lock: registration never stalls the
    // serve loop or other connections.
    let mut rng = Rng::seed_from(req.seed);
    let net = match UNet::new(mcfg, &mut rng) {
        Ok(n) => n,
        Err(e) => return error_response(400, format!("model construction failed: {e}")),
    };
    let den = Denoiser::new(EdmSchedule::default());

    let mut st = shared.lock();
    if st.draining {
        return error_response(503, "daemon is draining; not accepting new models");
    }
    let model = st.registry.register(req.name.clone(), net, assignment, den);
    let bound = st.max_pending.map(|capacity| QueueBound {
        capacity,
        policy: BackpressurePolicy::Reject,
    });
    // `--energy-budget` switches admission to the energy-capped policy
    // over the accelerator-backed cost model; the default stays fair
    // share over the no-op model (decisions bitwise identical to before
    // costs existed).
    let (policy, cost) = match st.energy_budget {
        Some(budget_pj) => (
            AdmissionPolicy::EnergyCapped {
                budget_pj,
                window: ENERGY_WINDOW_STEPS,
            },
            CostModelConfig::Accel {
                profile: PowerProfile::Efficiency,
            },
        ),
        None => (AdmissionPolicy::FairShare, CostModelConfig::Noop),
    };
    let max_batch = st.max_batch;
    st.serving.push(ModelServe {
        sampler: BatchSampler::new(den).with_traces(false),
        mcfg,
        precision_label: precision.clone(),
        engine: AdmissionEngine::with_cost(policy, bound, cost, max_batch),
        next_token: 0,
        streams: Vec::new(),
        meta: Vec::new(),
        stats: ServeStats::default(),
    });
    ok_json(&wire::ModelRegistered {
        model,
        name: req.name,
        precision,
        proto_version: wire::PROTO_VERSION,
    })
}

fn handle_submit(shared: &Arc<Shared>, body: &str) -> HttpResponse {
    let req: wire::Submit = match json::from_str(body) {
        Ok(r) => r,
        Err(e) => return error_response(400, format!("invalid submit body: {e}")),
    };
    let mut st = shared.lock();
    if st.draining {
        return error_response(503, "daemon is draining; not accepting new requests");
    }
    if req.model >= st.registry.len() {
        return error_response(
            404,
            format!(
                "unknown model {}; the registry holds {}",
                req.model,
                st.registry.len()
            ),
        );
    }
    if st.requests.contains_key(&req.id) {
        // The same duplicate-id rejection the in-process schedulers
        // raise, surfaced as 409 Conflict.
        let err = EdmError::Config {
            reason: format!("duplicate request id {}", req.id),
        };
        return error_response(error_status(&err), err.to_string());
    }
    if req.steps < 2 {
        let err = EdmError::Config {
            reason: format!(
                "request {} has step budget {}; at least 2 required",
                req.id, req.steps
            ),
        };
        return error_response(error_status(&err), err.to_string());
    }
    let arrival_step = st.clock;
    let serve_req = ServeRequest::new(req.id, req.steps)
        .seed(req.seed)
        .tenant(req.tenant)
        .priority(req.priority);
    let ms = &mut st.serving[req.model];
    let token = ms.next_token;
    ms.next_token += 1;
    let verdict = ms
        .engine
        .enqueue(ScheduledRequest::new(serve_req, arrival_step), token);
    match verdict {
        Backpressure::Accepted => {}
        // The daemon's bound uses the Reject policy, so Shed never
        // arrives here; refuse with 429 and keep the id reusable.
        Backpressure::Rejected(_) | Backpressure::Shed { .. } => {
            st.rejected += 1;
            let err = EdmError::Overloaded {
                reason: format!(
                    "model {} pending queue is full ({} queued); retry after admissions drain",
                    req.model,
                    st.serving[req.model].engine.queue_len()
                ),
            };
            return error_response(error_status(&err), err.to_string());
        }
    }
    st.requests.insert(
        req.id,
        RequestEntry {
            model: req.model,
            state: ReqState::Queued,
        },
    );
    shared.work.notify_all();
    ok_json(&wire::Submitted {
        id: req.id,
        model: req.model,
        arrival_step,
        proto_version: wire::PROTO_VERSION,
    })
}

fn handle_status(shared: &Arc<Shared>, id: u64) -> HttpResponse {
    let st = shared.lock();
    let Some(entry) = st.requests.get(&id) else {
        return error_response(404, format!("unknown request id {id}"));
    };
    let (state, image, error) = match &entry.state {
        ReqState::Queued => ("queued", None, None),
        ReqState::Running => ("running", None, None),
        ReqState::Done(img) => ("done", Some(img.clone()), None),
        ReqState::Failed(msg) => ("failed", None, Some(msg.clone())),
    };
    ok_json(&wire::StatusReply {
        id,
        state: state.into(),
        model: entry.model,
        image,
        error,
        proto_version: wire::PROTO_VERSION,
    })
}

fn handle_stats(shared: &Arc<Shared>) -> HttpResponse {
    let st = shared.lock();
    let some_finite = |v: f64| if v.is_finite() { Some(v) } else { None };
    // Energy/occupancy are meaningful only under a real cost model; the
    // no-op model's all-zero accounting stays absent on the wire.
    let some_pos = |v: f64| if v.is_finite() && v > 0.0 { Some(v) } else { None };
    let models = st
        .serving
        .iter()
        .enumerate()
        .map(|(m, ms)| wire::ModelStatsWire {
            model: m,
            name: st
                .registry
                .model(m)
                .map(|r| r.name().to_string())
                .unwrap_or_default(),
            precision: ms.precision_label.clone(),
            completed: ms.stats.requests.len(),
            rounds: ms.stats.rounds,
            mean_latency: some_finite(ms.stats.mean_latency()),
            p50_latency: ms.stats.p50_latency(),
            p95_latency: ms.stats.p95_latency(),
            p99_latency: ms.stats.p99_latency(),
            mean_batch_occupancy: some_finite(ms.stats.mean_batch_occupancy()),
            energy_per_image_pj: some_pos(ms.stats.energy_per_image_pj()),
            mean_occupancy: some_pos(ms.stats.mean_occupancy()),
            peak_occupancy: some_pos(ms.stats.peak_occupancy()),
        })
        .collect();
    // Cross-model tenant rollups over completed requests (their per-tenant
    // means are always finite because each rollup has >= 1 request).
    let all = ServeStats {
        requests: st
            .serving
            .iter()
            .flat_map(|ms| ms.stats.requests.iter().copied())
            .collect(),
        ..ServeStats::default()
    };
    let active_requests = st
        .serving
        .iter()
        .map(|ms| ms.engine.queue_len() + ms.streams.len())
        .sum();
    ok_json(&wire::StatsReply {
        clock: st.clock,
        rounds: st.rounds,
        draining: st.draining,
        active_requests,
        rejected: st.rejected,
        proto_version: wire::PROTO_VERSION,
        models,
        tenants: all.tenant_rollups(),
    })
}

fn handle_drain(shared: &Arc<Shared>) -> HttpResponse {
    let mut st = shared.lock();
    st.draining = true;
    // Wake the serve loop (to finish queued work) and any other waiters
    // re-checking the draining flag.
    shared.work.notify_all();
    shared.done.notify_all();
    while !st.shutdown && !st.is_idle() {
        st = shared.wait_done(st);
    }
    if st.shutdown {
        return error_response(503, "daemon shut down before the drain completed");
    }
    let completed = st.serving.iter().map(|ms| ms.stats.requests.len()).sum();
    ok_json(&wire::DrainReply {
        completed,
        rounds: st.rounds,
        final_step: st.clock,
        proto_version: wire::PROTO_VERSION,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_rejects_zero_batch_capacity() {
        let err = spawn(DaemonConfig {
            max_batch: 0,
            ..DaemonConfig::default()
        })
        .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn error_status_maps_duplicate_ids_to_conflict() {
        let dup = EdmError::Config {
            reason: "duplicate request id 7".into(),
        };
        assert_eq!(error_status(&dup), 409);
        let other = EdmError::Config {
            reason: "max_batch must be at least 1".into(),
        };
        assert_eq!(error_status(&other), 400);
        let full = EdmError::Overloaded {
            reason: "model 0 pending queue is full".into(),
        };
        assert_eq!(error_status(&full), 429);
        assert_eq!(reason_phrase(429), "Too Many Requests");
        assert_eq!(error_status(&EdmError::MissingState { what: "x" }), 500);
    }

    #[test]
    fn precision_labels_resolve() {
        assert_eq!(parse_precision("fp32").unwrap().1, "fp32");
        assert_eq!(parse_precision("int8-native").unwrap().1, "int8-native");
        assert_eq!(
            parse_precision("int8-fakequant").unwrap().1,
            "int8-fakequant"
        );
        assert!(parse_precision("int4").is_err());
        let (asg, _) = parse_precision("int8").unwrap();
        assert!(asg.is_some());
    }

    #[test]
    fn head_terminator_detection() {
        assert_eq!(find_terminator(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_terminator(b"GET / HTTP/1.1\r\n"), None);
    }
}
