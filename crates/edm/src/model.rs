//! The EDM U-Net.
//!
//! A small but architecturally faithful version of the paper's Figure 2
//! model: an encoder/decoder convolutional U-Net with the four block types
//! the paper profiles — **Conv+Act** residual blocks, a **Skip** block that
//! merges the encoder feature map into the decoder, **Embedding** linear
//! layers carrying the noise level, and a spatial **Attention** block at the
//! bottleneck.
//!
//! Every block has a stable index so mixed-precision policies
//! ([`sqdm_quant::PrecisionAssignment`]) and sensitivity sweeps can target
//! blocks individually, and every forward pass can stream post-activation
//! tensors to an observer for the sparsity analyses of Figures 5 and 7.

use crate::delta::DeltaSession;
use crate::error::{EdmError, Result};
use serde::{Deserialize, Serialize};
use sqdm_nn::layers::{
    avg_pool2, avg_pool2_backward, upsample_nearest2, upsample_nearest2_backward, ActLayer, Conv2d,
    GroupNorm, Linear, SelfAttention2d,
};
use sqdm_nn::{PackCache, Param, QuantExecutor};
use sqdm_quant::{BlockKind, PrecisionAssignment};
use sqdm_tensor::ops::{Activation, Conv2dGeometry};
use sqdm_tensor::{arena, Rng, Tensor};

/// Configuration of the U-Net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UNetConfig {
    /// Image channels (e.g. 3 for RGB-like synthetic data).
    pub in_channels: usize,
    /// Base feature channels at full resolution.
    pub base_channels: usize,
    /// Noise-embedding width.
    pub emb_dim: usize,
    /// Square image extent; must be divisible by 4.
    pub image_size: usize,
    /// GroupNorm group count; must divide `base_channels`.
    pub groups: usize,
}

impl Default for UNetConfig {
    fn default() -> Self {
        UNetConfig {
            in_channels: 3,
            base_channels: 12,
            emb_dim: 24,
            image_size: 16,
            groups: 4,
        }
    }
}

impl UNetConfig {
    /// A micro configuration for fast unit tests.
    pub fn micro() -> Self {
        UNetConfig {
            in_channels: 1,
            base_channels: 8,
            emb_dim: 16,
            image_size: 8,
            groups: 4,
        }
    }

    /// Validates divisibility constraints.
    ///
    /// # Errors
    ///
    /// Returns [`EdmError::Config`] when constraints are violated.
    pub fn validate(&self) -> Result<()> {
        if !self.image_size.is_multiple_of(4) || self.image_size == 0 {
            return Err(EdmError::Config {
                reason: format!(
                    "image_size {} must be a positive multiple of 4",
                    self.image_size
                ),
            });
        }
        if self.groups == 0 || !self.base_channels.is_multiple_of(self.groups) {
            return Err(EdmError::Config {
                reason: format!(
                    "groups {} must divide base_channels {}",
                    self.groups, self.base_channels
                ),
            });
        }
        if self.emb_dim == 0 || self.in_channels == 0 || self.base_channels == 0 {
            return Err(EdmError::Config {
                reason: "all extents must be nonzero".into(),
            });
        }
        Ok(())
    }
}

/// A post-activation tensor observed during a forward pass.
///
/// `tensor` is the activation feeding the next convolution — exactly the
/// data whose sparsity the accelerator exploits.
#[derive(Debug)]
pub struct ActEvent<'t> {
    /// Index of the emitting block.
    pub block_index: usize,
    /// Block type.
    pub kind: BlockKind,
    /// Stage within the block (0 = after first activation, 1 = after
    /// second).
    pub stage: usize,
    /// The post-activation feature map `[N, C, H, W]`.
    pub tensor: &'t Tensor,
}

/// Observer callback for activation events.
pub type ActObserver<'a> = dyn FnMut(ActEvent<'_>) + 'a;

/// Execution settings for one forward pass.
pub struct RunConfig<'a> {
    /// Cache intermediates for a subsequent backward pass.
    pub train: bool,
    /// Optional per-block precision (fake quantization). `None` = FP32.
    pub assignment: Option<&'a PrecisionAssignment>,
    /// Optional activation observer.
    pub observer: Option<&'a mut ActObserver<'a>>,
    /// Per-request batched execution: treat every element of the batch
    /// axis as an independent serving request. Activations are quantized
    /// per sample (never across the batch) while each layer's weights are
    /// quantized once per call, so a batched forward is bitwise identical
    /// to running the requests one at a time — the contract
    /// [`crate::serve`] packs concurrent generations on. Ignored by
    /// training passes.
    pub batched: bool,
    /// Optional weight-pack cache: every layer fetches its quantization
    /// artifact (integer kernel pack or fake-quant weight) from here
    /// instead of rebuilding it per call. Bitwise identical to the
    /// uncached pass. A resident model of the serving registry owns one
    /// cache for its lifetime; solo sampling uses a per-trajectory cache.
    pub packs: Option<&'a PackCache>,
    /// Optional temporal-delta session: Conv+Act convolutions on the
    /// integer engine recompute only reduction rows whose inputs changed
    /// since the previous denoiser evaluation (see [`crate::delta`]).
    /// Ignored by training, fake-quant and batched passes.
    pub delta: Option<&'a mut DeltaSession>,
}

impl RunConfig<'_> {
    /// Full-precision training pass.
    pub fn train() -> Self {
        RunConfig {
            train: true,
            assignment: None,
            observer: None,
            batched: false,
            packs: None,
            delta: None,
        }
    }

    /// Full-precision inference pass.
    pub fn infer() -> Self {
        RunConfig {
            train: false,
            assignment: None,
            observer: None,
            batched: false,
            packs: None,
            delta: None,
        }
    }

    /// Inference pass with per-request batched execution (see
    /// [`RunConfig::batched`]).
    pub fn infer_batched() -> Self {
        RunConfig {
            batched: true,
            ..RunConfig::infer()
        }
    }

    fn exec_for(&self, block: usize) -> QuantExecutor {
        let exec = match self.assignment {
            None => QuantExecutor::full_precision(),
            Some(a) => QuantExecutor::new(a.block(block)).with_mode(a.mode()),
        };
        exec.with_batched(self.batched)
    }
}

/// Adds a per-(sample, channel) bias to a feature map.
fn add_channel_bias(x: &mut Tensor, bias: &Tensor) -> Result<()> {
    let (n, c, h, w) = x.shape().as_nchw()?;
    debug_assert_eq!(bias.dims(), [n, c]);
    let bv = bias.as_slice();
    let xv = x.as_mut_slice();
    for nn in 0..n {
        for ch in 0..c {
            let b = bv[nn * c + ch];
            let start = (nn * c + ch) * h * w;
            for v in &mut xv[start..start + h * w] {
                *v += b;
            }
        }
    }
    Ok(())
}

/// Reduces a feature-map gradient to a per-(sample, channel) bias gradient.
fn reduce_channel_bias(g: &Tensor) -> Result<Tensor> {
    let (n, c, h, w) = g.shape().as_nchw()?;
    let gv = g.as_slice();
    let mut out = vec![0.0f32; n * c];
    for nn in 0..n {
        for ch in 0..c {
            let start = (nn * c + ch) * h * w;
            out[nn * c + ch] = gv[start..start + h * w].iter().sum();
        }
    }
    Ok(Tensor::from_vec(out, [n, c])?)
}

/// Concatenates two `[N, C?, H, W]` tensors along the channel axis.
fn concat_channels(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (n, ca, h, w) = a.shape().as_nchw()?;
    let (nb, cb, hb, wb) = b.shape().as_nchw()?;
    if n != nb || h != hb || w != wb {
        return Err(EdmError::Config {
            reason: format!("concat mismatch: {:?} vs {:?}", a.dims(), b.dims()),
        });
    }
    let mut out = arena::take_zeroed::<f32>(n * (ca + cb) * h * w);
    let hw = h * w;
    for nn in 0..n {
        let dst_base = nn * (ca + cb) * hw;
        out[dst_base..dst_base + ca * hw]
            .copy_from_slice(&a.as_slice()[nn * ca * hw..(nn + 1) * ca * hw]);
        out[dst_base + ca * hw..dst_base + (ca + cb) * hw]
            .copy_from_slice(&b.as_slice()[nn * cb * hw..(nn + 1) * cb * hw]);
    }
    Ok(Tensor::from_vec(out, [n, ca + cb, h, w])?)
}

/// Splits a channel-concatenated gradient back into its two parts.
fn split_channels(g: &Tensor, ca: usize) -> Result<(Tensor, Tensor)> {
    let (n, c, h, w) = g.shape().as_nchw()?;
    let cb = c - ca;
    let hw = h * w;
    let mut ga = vec![0.0f32; n * ca * hw];
    let mut gb = vec![0.0f32; n * cb * hw];
    for nn in 0..n {
        let src = nn * c * hw;
        ga[nn * ca * hw..(nn + 1) * ca * hw].copy_from_slice(&g.as_slice()[src..src + ca * hw]);
        gb[nn * cb * hw..(nn + 1) * cb * hw]
            .copy_from_slice(&g.as_slice()[src + ca * hw..src + c * hw]);
    }
    Ok((
        Tensor::from_vec(ga, [n, ca, h, w])?,
        Tensor::from_vec(gb, [n, cb, h, w])?,
    ))
}

/// A residual Conv+Act block: `y = conv2(act(gn2(conv1(act(gn1(x))) + emb)))
/// + skip(x)`, the paper's dominant block type.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConvBlock {
    index: usize,
    gn1: GroupNorm,
    act1: ActLayer,
    conv1: Conv2d,
    emb_proj: Linear,
    gn2: GroupNorm,
    act2: ActLayer,
    conv2: Conv2d,
    skip: Option<Conv2d>,
    #[serde(skip)]
    cache: Option<ConvBlockCache>,
}

#[derive(Debug, Clone)]
struct ConvBlockCache {
    /// Input, for the residual-skip backward.
    had_skip_input: bool,
}

impl ConvBlock {
    fn new(
        index: usize,
        in_ch: usize,
        out_ch: usize,
        emb_dim: usize,
        groups: usize,
        rng: &mut Rng,
    ) -> Result<Self> {
        let skip = if in_ch != out_ch {
            Some(Conv2d::new(
                in_ch,
                out_ch,
                1,
                Conv2dGeometry::new(1, 0),
                rng,
            ))
        } else {
            None
        };
        Ok(ConvBlock {
            index,
            gn1: GroupNorm::new(in_ch, groups.min(in_ch))?,
            act1: ActLayer::new(Activation::Silu),
            conv1: Conv2d::new(in_ch, out_ch, 3, Conv2dGeometry::same(3), rng),
            emb_proj: Linear::new(emb_dim, out_ch, rng),
            gn2: GroupNorm::new(out_ch, groups.min(out_ch))?,
            act2: ActLayer::new(Activation::Silu),
            conv2: Conv2d::new(out_ch, out_ch, 3, Conv2dGeometry::same(3), rng),
            skip,
            cache: None,
        })
    }

    /// The block's index in the execution order.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The activation function currently used.
    pub fn activation(&self) -> Activation {
        self.act1.kind()
    }

    /// Replaces both activations (SiLU → ReLU surgery).
    pub fn set_activation(&mut self, act: Activation) {
        self.act1.set_kind(act);
        self.act2.set_kind(act);
    }

    fn forward(&mut self, x: &Tensor, emb: &Tensor, rc: &mut RunConfig<'_>) -> Result<Tensor> {
        let exec = rc.exec_for(self.index);
        let mut h = self.gn1.forward(x, rc.train)?;
        h = self.act1.forward(&h, rc.train);
        if let Some(obs) = rc.observer.as_deref_mut() {
            obs(ActEvent {
                block_index: self.index,
                kind: BlockKind::ConvAct,
                stage: 0,
                tensor: &h,
            });
        }
        let mut h = if rc.train {
            self.conv1.forward(&h, true)?
        } else if let Some(ds) = rc.delta.as_deref_mut() {
            ds.conv_forward(&exec, &self.conv1, &h, rc.packs)?
        } else {
            exec.conv_forward_cached(&self.conv1, &h, rc.packs)?
        };
        let bias = if rc.train {
            self.emb_proj.forward(emb, true)?
        } else {
            // The embedding vector is signed even in unsigned-activation
            // (post-ReLU) blocks.
            exec.signed_activations()
                .linear_forward_cached(&self.emb_proj, emb, rc.packs)?
        };
        add_channel_bias(&mut h, &bias)?;
        let mut h2 = self.gn2.forward(&h, rc.train)?;
        h2 = self.act2.forward(&h2, rc.train);
        if let Some(obs) = rc.observer.as_deref_mut() {
            obs(ActEvent {
                block_index: self.index,
                kind: BlockKind::ConvAct,
                stage: 1,
                tensor: &h2,
            });
        }
        let h2 = if rc.train {
            self.conv2.forward(&h2, true)?
        } else if let Some(ds) = rc.delta.as_deref_mut() {
            ds.conv_forward(&exec, &self.conv2, &h2, rc.packs)?
        } else {
            exec.conv_forward_cached(&self.conv2, &h2, rc.packs)?
        };
        let res = match &mut self.skip {
            Some(sc) => {
                if rc.train {
                    sc.forward(x, true)?
                } else {
                    // The block input is a signed residual stream, not a
                    // ReLU output: quantize it with the signed variant.
                    exec.signed_activations()
                        .conv_forward_cached(sc, x, rc.packs)?
                }
            }
            None => x.clone(),
        };
        if rc.train {
            self.cache = Some(ConvBlockCache {
                had_skip_input: self.skip.is_some(),
            });
        }
        Ok(h2.add(&res)?)
    }

    /// Backward; returns `(grad_x, grad_emb)`.
    fn backward(&mut self, grad_y: &Tensor) -> Result<(Tensor, Tensor)> {
        let cache = self.cache.take().ok_or(EdmError::MissingState {
            what: "ConvBlock backward without forward",
        })?;
        // Residual path.
        let g_skip = if cache.had_skip_input {
            self.skip.as_mut().unwrap().backward(grad_y)?
        } else {
            grad_y.clone()
        };
        // Main path, reversed.
        let g = self.conv2.backward(grad_y)?;
        let g = self.act2.backward(&g)?;
        let g = self.gn2.backward(&g)?;
        let g_bias = reduce_channel_bias(&g)?;
        let g_emb = self.emb_proj.backward(&g_bias)?;
        let g = self.conv1.backward(&g)?;
        let g = self.act1.backward(&g)?;
        let g = self.gn1.backward(&g)?;
        Ok((g.add(&g_skip)?, g_emb))
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps = Vec::new();
        ps.extend(self.gn1.params_mut());
        ps.extend(self.conv1.params_mut());
        ps.extend(self.emb_proj.params_mut());
        ps.extend(self.gn2.params_mut());
        ps.extend(self.conv2.params_mut());
        if let Some(sc) = &mut self.skip {
            ps.extend(sc.params_mut());
        }
        ps
    }
}

/// Block index constants for the fixed topology below.
pub mod block_ids {
    /// Input convolution.
    pub const IN_CONV: usize = 0;
    /// Encoder full-resolution blocks.
    pub const ENC_HI: [usize; 2] = [1, 2];
    /// Encoder half-resolution blocks.
    pub const ENC_LO: [usize; 2] = [3, 4];
    /// Bottleneck attention.
    pub const MID_ATTN: usize = 5;
    /// Bottleneck conv block.
    pub const MID_CONV: usize = 6;
    /// Decoder half-resolution block.
    pub const DEC_LO: usize = 7;
    /// Skip-merge block (concat + 1×1 conv).
    pub const SKIP_MERGE: usize = 8;
    /// Decoder full-resolution blocks.
    pub const DEC_HI: [usize; 2] = [9, 10];
    /// Output convolution.
    pub const OUT_CONV: usize = 11;
    /// Noise-embedding MLP layers.
    pub const EMB: [usize; 2] = [12, 13];
    /// Total number of profiled blocks.
    pub const COUNT: usize = 14;
}

/// The EDM U-Net denoiser backbone `F(x, c_noise)`.
///
/// Topology (image size S, base channels C):
///
/// ```text
/// in_conv(3→C) → enc_hi₀ → enc_hi₁ ──────────────┐ (skip)
///   ↓ avgpool                                     │
/// enc_lo₀(C→2C) → enc_lo₁ → attn → mid → dec_lo   │
///   ↑ upsample                                    │
/// skip_merge(concat 2C+C → 1×1 conv → C) ←────────┘
/// → dec_hi₀ → dec_hi₁ → out_norm/act/conv(C→3)
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UNet {
    cfg: UNetConfig,
    /// Fixed Fourier frequencies for the noise embedding, `[emb_dim / 2]`.
    fourier_freqs: Tensor,
    emb_lin1: Linear,
    emb_lin2: Linear,
    emb_act: ActLayer,
    in_conv: Conv2d,
    enc_hi: Vec<ConvBlock>,
    enc_lo: Vec<ConvBlock>,
    mid_attn: SelfAttention2d,
    mid_conv: ConvBlock,
    dec_lo: ConvBlock,
    skip_conv: Conv2d,
    dec_hi: Vec<ConvBlock>,
    out_gn: GroupNorm,
    out_act: ActLayer,
    out_conv: Conv2d,
    #[serde(skip)]
    cache: Option<UNetCache>,
}

#[derive(Debug, Clone)]
struct UNetCache {
    skip_channels: usize,
}

impl UNet {
    /// Builds a freshly initialized U-Net.
    ///
    /// # Errors
    ///
    /// Returns [`EdmError::Config`] for invalid configurations.
    pub fn new(cfg: UNetConfig, rng: &mut Rng) -> Result<Self> {
        cfg.validate()?;
        let c = cfg.base_channels;
        let c2 = 2 * c;
        let e = cfg.emb_dim;
        let g = cfg.groups;
        let freqs = Tensor::randn([e / 2], rng).scale(2.0);
        Ok(UNet {
            cfg,
            fourier_freqs: freqs,
            emb_lin1: Linear::new(e, e, rng),
            emb_lin2: Linear::new(e, e, rng),
            emb_act: ActLayer::new(Activation::Silu),
            in_conv: Conv2d::new(cfg.in_channels, c, 3, Conv2dGeometry::same(3), rng),
            enc_hi: vec![
                ConvBlock::new(block_ids::ENC_HI[0], c, c, e, g, rng)?,
                ConvBlock::new(block_ids::ENC_HI[1], c, c, e, g, rng)?,
            ],
            enc_lo: vec![
                ConvBlock::new(block_ids::ENC_LO[0], c, c2, e, g, rng)?,
                ConvBlock::new(block_ids::ENC_LO[1], c2, c2, e, g, rng)?,
            ],
            mid_attn: SelfAttention2d::new(c2, rng),
            mid_conv: ConvBlock::new(block_ids::MID_CONV, c2, c2, e, g, rng)?,
            dec_lo: ConvBlock::new(block_ids::DEC_LO, c2, c2, e, g, rng)?,
            skip_conv: Conv2d::new(c2 + c, c, 1, Conv2dGeometry::new(1, 0), rng),
            dec_hi: vec![
                ConvBlock::new(block_ids::DEC_HI[0], c, c, e, g, rng)?,
                ConvBlock::new(block_ids::DEC_HI[1], c, c, e, g, rng)?,
            ],
            out_gn: GroupNorm::new(c, g.min(c))?,
            out_act: ActLayer::new(Activation::Silu),
            out_conv: Conv2d::new(c, cfg.in_channels, 3, Conv2dGeometry::same(3), rng),
            cache: None,
        })
    }

    /// The model configuration.
    pub fn config(&self) -> &UNetConfig {
        &self.cfg
    }

    /// The activation function of the Conv+Act blocks.
    pub fn activation(&self) -> Activation {
        self.enc_hi[0].activation()
    }

    /// Replaces every Conv+Act activation (the §III-B SiLU → ReLU surgery).
    pub fn set_activation(&mut self, act: Activation) {
        for b in self.conv_blocks_mut() {
            b.set_activation(act);
        }
        self.out_act.set_kind(act);
    }

    fn conv_blocks_mut(&mut self) -> Vec<&mut ConvBlock> {
        let mut v: Vec<&mut ConvBlock> = Vec::new();
        v.extend(self.enc_hi.iter_mut());
        v.extend(self.enc_lo.iter_mut());
        v.push(&mut self.mid_conv);
        v.push(&mut self.dec_lo);
        v.extend(self.dec_hi.iter_mut());
        v
    }

    /// Noise embedding: fixed Fourier features of `c_noise` through a
    /// two-layer MLP. `c_noise` has one entry per batch element.
    fn embed(&mut self, c_noise: &[f32], rc: &mut RunConfig<'_>) -> Result<Tensor> {
        let n = c_noise.len();
        let half = self.fourier_freqs.len();
        let mut feats = arena::take_zeroed::<f32>(n * half * 2);
        let fv = self.fourier_freqs.as_slice();
        for (i, &cn) in c_noise.iter().enumerate() {
            for (j, &f) in fv.iter().enumerate() {
                let phase = 2.0 * std::f32::consts::PI * f * cn;
                feats[i * half * 2 + j] = phase.sin();
                feats[i * half * 2 + half + j] = phase.cos();
            }
        }
        let feats = Tensor::from_vec(feats, [n, half * 2])?;
        let e1 = rc.exec_for(block_ids::EMB[0]);
        let h = if rc.train {
            self.emb_lin1.forward(&feats, true)?
        } else {
            e1.linear_forward_cached(&self.emb_lin1, &feats, rc.packs)?
        };
        let h = self.emb_act.forward(&h, rc.train);
        let e2 = rc.exec_for(block_ids::EMB[1]);
        let out = if rc.train {
            self.emb_lin2.forward(&h, true)?
        } else {
            e2.linear_forward_cached(&self.emb_lin2, &h, rc.packs)?
        };
        Ok(out)
    }

    /// Raw network forward `F(x, c_noise)`.
    ///
    /// `x` is `[N, in_channels, S, S]`; `c_noise` has length `N`.
    ///
    /// # Errors
    ///
    /// Propagates layer errors (shape mismatches, invalid quantization).
    pub fn forward(
        &mut self,
        x: &Tensor,
        c_noise: &[f32],
        rc: &mut RunConfig<'_>,
    ) -> Result<Tensor> {
        let (n, _, _, _) = x.shape().as_nchw()?;
        if c_noise.len() != n {
            return Err(EdmError::Config {
                reason: format!("c_noise has {} entries for batch {n}", c_noise.len()),
            });
        }
        let emb = self.embed(c_noise, rc)?;

        // Input conv (block 0).
        let exec0 = rc.exec_for(block_ids::IN_CONV);
        let mut h = if rc.train {
            self.in_conv.forward(x, true)?
        } else {
            exec0.conv_forward_cached(&self.in_conv, x, rc.packs)?
        };
        // Encoder, full resolution.
        for b in &mut self.enc_hi {
            h = b.forward(&h, &emb, rc)?;
        }
        let skip = h.clone();
        // Down.
        h = avg_pool2(&h)?;
        for b in &mut self.enc_lo {
            h = b.forward(&h, &emb, rc)?;
        }
        // Bottleneck attention + conv. Inference runs the q/k/v/out
        // projections under the block's precision and execution mode;
        // training keeps the cache-building f32 path. The attention input
        // is the signed residual stream (and the softmax·V mix feeding the
        // output projection is signed too), so unsigned post-ReLU
        // activation formats switch to their signed variant here, as for
        // the skip convolutions.
        h = if rc.train {
            self.mid_attn.forward(&h, true)?
        } else {
            rc.exec_for(block_ids::MID_ATTN)
                .signed_activations()
                .attention_forward_cached(&self.mid_attn, &h, rc.packs)?
        };
        if let Some(obs) = rc.observer.as_deref_mut() {
            obs(ActEvent {
                block_index: block_ids::MID_ATTN,
                kind: BlockKind::Attention,
                stage: 0,
                tensor: &h,
            });
        }
        h = self.mid_conv.forward(&h, &emb, rc)?;
        h = self.dec_lo.forward(&h, &emb, rc)?;
        // Up + skip merge (block 8).
        h = upsample_nearest2(&h)?;
        let merged = concat_channels(&h, &skip)?;
        let exec8 = rc.exec_for(block_ids::SKIP_MERGE);
        h = if rc.train {
            self.skip_conv.forward(&merged, true)?
        } else {
            exec8.conv_forward_cached(&self.skip_conv, &merged, rc.packs)?
        };
        if let Some(obs) = rc.observer.as_deref_mut() {
            obs(ActEvent {
                block_index: block_ids::SKIP_MERGE,
                kind: BlockKind::Skip,
                stage: 0,
                tensor: &h,
            });
        }
        // Decoder, full resolution.
        for b in &mut self.dec_hi {
            h = b.forward(&h, &emb, rc)?;
        }
        // Output head (block 11).
        let mut o = self.out_gn.forward(&h, rc.train)?;
        o = self.out_act.forward(&o, rc.train);
        if let Some(obs) = rc.observer.as_deref_mut() {
            obs(ActEvent {
                block_index: block_ids::OUT_CONV,
                kind: BlockKind::ConvAct,
                stage: 0,
                tensor: &o,
            });
        }
        let exec11 = rc.exec_for(block_ids::OUT_CONV);
        let y = if rc.train {
            self.out_conv.forward(&o, true)?
        } else {
            exec11.conv_forward_cached(&self.out_conv, &o, rc.packs)?
        };
        if rc.train {
            self.cache = Some(UNetCache {
                skip_channels: 2 * self.cfg.base_channels,
            });
        }
        Ok(y)
    }

    /// Batched-serving forward: one packed `[N, in_channels, S, S]` pass
    /// over `N` independent requests, bitwise identical to `N` separate
    /// [`UNet::forward`] calls on the individual samples (with matching
    /// per-sample `c_noise` entries), in either execution mode and at any
    /// `SQDM_THREADS`.
    ///
    /// Equivalent to calling [`UNet::forward`] with
    /// [`RunConfig::batched`] set: activations are quantized per request,
    /// weights once per layer per step — the weight (re)quantization,
    /// im2col lowerings and GEMM packs are amortized across the batch,
    /// which is where batched serving gets its throughput.
    ///
    /// # Errors
    ///
    /// Propagates layer errors (shape mismatches, invalid quantization).
    pub fn forward_batch(
        &mut self,
        x: &Tensor,
        c_noise: &[f32],
        rc: &mut RunConfig<'_>,
    ) -> Result<Tensor> {
        let prev = rc.batched;
        rc.batched = true;
        let y = self.forward(x, c_noise, rc);
        rc.batched = prev;
        y
    }

    /// Backward pass through the whole network, accumulating parameter
    /// gradients. Returns the gradient with respect to the input.
    ///
    /// # Errors
    ///
    /// Returns [`EdmError::MissingState`] without a preceding training
    /// forward.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let cache = self.cache.take().ok_or(EdmError::MissingState {
            what: "UNet backward without training forward",
        })?;
        let mut g_emb_total: Option<Tensor> = None;
        let add_emb = |acc: &mut Option<Tensor>, g: Tensor| -> Result<()> {
            match acc {
                None => *acc = Some(g),
                Some(a) => a.add_scaled(&g, 1.0)?,
            }
            Ok(())
        };

        // Output head.
        let g = self.out_conv.backward(grad_out)?;
        let g = self.out_act.backward(&g)?;
        let mut g = self.out_gn.backward(&g)?;
        // Decoder full-res blocks.
        for b in self.dec_hi.iter_mut().rev() {
            let (gx, ge) = b.backward(&g)?;
            g = gx;
            add_emb(&mut g_emb_total, ge)?;
        }
        // Skip merge.
        let g_merged = self.skip_conv.backward(&g)?;
        let (g_up, mut g_skip) = split_channels(&g_merged, cache.skip_channels)?;
        let mut g = upsample_nearest2_backward(&g_up)?;
        // Bottleneck.
        let (gx, ge) = self.dec_lo.backward(&g)?;
        g = gx;
        add_emb(&mut g_emb_total, ge)?;
        let (gx, ge) = self.mid_conv.backward(&g)?;
        g = gx;
        add_emb(&mut g_emb_total, ge)?;
        g = self.mid_attn.backward(&g)?;
        // Encoder low-res.
        for b in self.enc_lo.iter_mut().rev() {
            let (gx, ge) = b.backward(&g)?;
            g = gx;
            add_emb(&mut g_emb_total, ge)?;
        }
        // Down: gradient joins the skip branch at full resolution.
        let g_full = avg_pool2_backward(&g)?;
        g_skip.add_scaled(&g_full, 1.0)?;
        let mut g = g_skip;
        for b in self.enc_hi.iter_mut().rev() {
            let (gx, ge) = b.backward(&g)?;
            g = gx;
            add_emb(&mut g_emb_total, ge)?;
        }
        let g_in = self.in_conv.backward(&g)?;

        // Embedding MLP.
        if let Some(ge) = g_emb_total {
            let g = self.emb_lin2.backward(&ge)?;
            let g = self.emb_act.backward(&g)?;
            let _ = self.emb_lin1.backward(&g)?;
        }
        Ok(g_in)
    }

    /// All trainable parameters, in a stable order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps: Vec<&mut Param> = Vec::new();
        ps.extend(self.emb_lin1.params_mut());
        ps.extend(self.emb_lin2.params_mut());
        ps.extend(self.in_conv.params_mut());
        for b in &mut self.enc_hi {
            ps.extend(b.params_mut());
        }
        for b in &mut self.enc_lo {
            ps.extend(b.params_mut());
        }
        ps.extend(self.mid_attn.params_mut());
        ps.extend(self.mid_conv.params_mut());
        ps.extend(self.dec_lo.params_mut());
        ps.extend(self.skip_conv.params_mut());
        for b in &mut self.dec_hi {
            ps.extend(b.params_mut());
        }
        ps.extend(self.out_gn.params_mut());
        ps.extend(self.out_conv.params_mut());
        ps
    }

    /// Total trainable parameter count.
    pub fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }

    /// Clears all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_determinism() {
        let mut rng = Rng::seed_from(1);
        let cfg = UNetConfig::micro();
        let mut net = UNet::new(cfg, &mut rng).unwrap();
        let x = Tensor::randn([2, 1, 8, 8], &mut rng);
        let y1 = net
            .forward(&x, &[0.1, -0.3], &mut RunConfig::infer())
            .unwrap();
        let y2 = net
            .forward(&x, &[0.1, -0.3], &mut RunConfig::infer())
            .unwrap();
        assert_eq!(y1.dims(), x.dims());
        assert_eq!(y1, y2);
    }

    #[test]
    fn noise_level_changes_output() {
        let mut rng = Rng::seed_from(2);
        let mut net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
        let x = Tensor::randn([1, 1, 8, 8], &mut rng);
        let y1 = net.forward(&x, &[0.0], &mut RunConfig::infer()).unwrap();
        let y2 = net.forward(&x, &[1.0], &mut RunConfig::infer()).unwrap();
        assert!(y1.mse(&y2).unwrap() > 1e-8);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut rng = Rng::seed_from(3);
        let mut bad = UNetConfig::micro();
        bad.image_size = 6;
        assert!(UNet::new(bad, &mut rng).is_err());
        let mut bad2 = UNetConfig::micro();
        bad2.groups = 3;
        assert!(UNet::new(bad2, &mut rng).is_err());
    }

    #[test]
    fn backward_populates_all_gradients() {
        let mut rng = Rng::seed_from(4);
        let mut net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
        let x = Tensor::randn([1, 1, 8, 8], &mut rng);
        let y = net.forward(&x, &[0.2], &mut RunConfig::train()).unwrap();
        net.backward(&Tensor::ones(y.dims())).unwrap();
        let nonzero = net
            .params_mut()
            .iter()
            .filter(|p| p.grad.abs_max() > 0.0)
            .count();
        let total = net.params_mut().len();
        assert!(
            nonzero as f64 > 0.9 * total as f64,
            "{nonzero}/{total} params have gradient"
        );
    }

    #[test]
    fn backward_matches_finite_difference_on_input() {
        let mut rng = Rng::seed_from(5);
        let mut net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
        let x = Tensor::randn([1, 1, 8, 8], &mut rng);
        let wloss = Tensor::randn([1, 1, 8, 8], &mut rng);
        net.forward(&x, &[0.1], &mut RunConfig::train()).unwrap();
        let gin = net.backward(&wloss).unwrap();

        let eps = 1e-2f32;
        let loss = |x: &Tensor| -> f32 {
            let mut m = net.clone();
            m.forward(x, &[0.1], &mut RunConfig::infer())
                .unwrap()
                .as_slice()
                .iter()
                .zip(wloss.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        for idx in [0usize, 13, 37, 63] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fd = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            let an = gin.as_slice()[idx];
            assert!((fd - an).abs() < 0.05, "idx {idx}: fd={fd} an={an}");
        }
    }

    #[test]
    fn activation_surgery_reaches_all_blocks() {
        let mut rng = Rng::seed_from(6);
        let mut net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
        assert_eq!(net.activation(), Activation::Silu);
        net.set_activation(Activation::Relu);
        assert_eq!(net.activation(), Activation::Relu);
        // ReLU model produces sparse observed activations.
        let x = Tensor::randn([1, 1, 8, 8], &mut rng);
        let mut sparsities = Vec::new();
        let mut obs = |ev: ActEvent<'_>| {
            if ev.kind == BlockKind::ConvAct {
                sparsities.push(ev.tensor.sparsity());
            }
        };
        let mut rc = RunConfig {
            train: false,
            assignment: None,
            observer: Some(&mut obs),
            batched: false,
            packs: None,
            delta: None,
        };
        net.forward(&x, &[0.0], &mut rc).unwrap();
        assert!(!sparsities.is_empty());
        let avg: f64 = sparsities.iter().sum::<f64>() / sparsities.len() as f64;
        assert!(avg > 0.2, "relu sparsity {avg}");
    }

    #[test]
    fn observer_sees_all_conv_blocks() {
        let mut rng = Rng::seed_from(7);
        let mut net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
        let x = Tensor::randn([1, 1, 8, 8], &mut rng);
        let mut seen = std::collections::BTreeSet::new();
        let mut obs = |ev: ActEvent<'_>| {
            seen.insert(ev.block_index);
        };
        let mut rc = RunConfig {
            train: false,
            assignment: None,
            observer: Some(&mut obs),
            batched: false,
            packs: None,
            delta: None,
        };
        net.forward(&x, &[0.0], &mut rc).unwrap();
        // All conv blocks + attention + skip + out.
        for idx in [1usize, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11] {
            assert!(seen.contains(&idx), "missing block {idx}: {seen:?}");
        }
    }

    #[test]
    fn quantized_inference_differs_but_stays_close_at_8bit() {
        use sqdm_quant::{BlockPrecision, QuantFormat};
        let mut rng = Rng::seed_from(8);
        let mut net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
        let x = Tensor::randn([1, 1, 8, 8], &mut rng);
        let exact = net.forward(&x, &[0.0], &mut RunConfig::infer()).unwrap();
        let a8 = PrecisionAssignment::uniform(
            block_ids::COUNT,
            BlockPrecision::uniform(QuantFormat::mxint8()),
            "MXINT8",
        );
        let a4 = PrecisionAssignment::uniform(
            block_ids::COUNT,
            BlockPrecision::uniform(QuantFormat::int4()),
            "INT4",
        );
        let mut rc8 = RunConfig {
            train: false,
            assignment: Some(&a8),
            observer: None,
            batched: false,
            packs: None,
            delta: None,
        };
        let y8 = net.forward(&x, &[0.0], &mut rc8).unwrap();
        let mut rc4 = RunConfig {
            train: false,
            assignment: Some(&a4),
            observer: None,
            batched: false,
            packs: None,
            delta: None,
        };
        let y4 = net.forward(&x, &[0.0], &mut rc4).unwrap();
        let e8 = exact.mse(&y8).unwrap();
        let e4 = exact.mse(&y4).unwrap();
        assert!(e8 > 0.0 && e4 > e8, "e8={e8} e4={e4}");
    }

    #[test]
    fn native_int_inference_tracks_fake_quant_at_8bit() {
        use sqdm_quant::{BlockPrecision, ExecMode, QuantFormat};
        let mut rng = Rng::seed_from(10);
        let mut net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
        let x = Tensor::randn([1, 1, 8, 8], &mut rng);
        let exact = net.forward(&x, &[0.0], &mut RunConfig::infer()).unwrap();
        let base = PrecisionAssignment::uniform(
            block_ids::COUNT,
            BlockPrecision::uniform(QuantFormat::int8()),
            "INT8",
        );
        let fake = base.clone().with_mode(ExecMode::FakeQuant);
        let native = base.with_mode(ExecMode::NativeInt);
        let mut rcf = RunConfig {
            train: false,
            assignment: Some(&fake),
            observer: None,
            batched: false,
            packs: None,
            delta: None,
        };
        let yf = net.forward(&x, &[0.0], &mut rcf).unwrap();
        let mut rcn = RunConfig {
            train: false,
            assignment: Some(&native),
            observer: None,
            batched: false,
            packs: None,
            delta: None,
        };
        let yn = net.forward(&x, &[0.0], &mut rcn).unwrap();
        // INT8 has per-channel weights and per-tensor activations, so the
        // integer engine quantizes identically to the fake-quant path; the
        // two differ by accumulation rounding (occasionally amplified when
        // a near-boundary value flips a code downstream), which must stay
        // far below the quantization error itself.
        let q_err = exact.mse(&yf).unwrap();
        let path_gap = yf.mse(&yn).unwrap();
        assert!(q_err > 0.0);
        assert!(
            path_gap < 0.05 * q_err + 1e-10,
            "native/fake gap {path_gap} vs quant error {q_err}"
        );
    }

    #[test]
    fn param_count_is_substantial() {
        let mut rng = Rng::seed_from(9);
        let mut net = UNet::new(UNetConfig::default(), &mut rng).unwrap();
        let n = net.param_count();
        assert!(n > 20_000, "{n} params");
    }
}
