//! Batched serving vs. one-at-a-time sampling: the bitwise contract.
//!
//! `sqdm_edm::serve` promises that packing N concurrent requests into
//! batched forwards changes *nothing* about any request's result: the
//! image equals the one `sample` produces for the same `(seed, steps)`,
//! bit for bit, for any batch composition (mixed step budgets included),
//! in both execution modes, at any `SQDM_THREADS`. These property tests
//! pin that contract over random request mixes and thread counts
//! `{1, 2, 7}`, plus `forward_batch` directly against per-sample
//! `forward` calls.

use proptest::prelude::*;
use sqdm_edm::serve::{
    serve_batch, AdmissionPolicy, BackpressurePolicy, QueueBound, ScheduledRequest, Scheduler,
    ServeRequest,
};
use sqdm_edm::{
    block_ids, sample, CostModelConfig, Denoiser, EdmSchedule, ModelRegistry, RegistryRequest,
    RegistryScheduler, RunConfig, SamplerConfig, UNet, UNetConfig,
};
use sqdm_quant::{BlockPrecision, ExecMode, PrecisionAssignment, QuantFormat};
use sqdm_tensor::parallel::with_threads;
use sqdm_tensor::{Rng, Tensor};

/// Serial reference plus even and lopsided pool partitions.
const THREADS: [usize; 3] = [1, 2, 7];

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn int8_assignment(mode: ExecMode) -> PrecisionAssignment {
    PrecisionAssignment::uniform(
        block_ids::COUNT,
        BlockPrecision::uniform(QuantFormat::int8()),
        "INT8",
    )
    .with_mode(mode)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    /// A batched `forward_batch` over N packed samples equals N
    /// single-sample `forward` calls, bitwise, in both execution modes
    /// and at every thread count.
    #[test]
    fn forward_batch_is_bitwise_equal_to_single_sample_forwards(
        (n, seed) in (2usize..5, 0u64..1 << 32)
    ) {
        let mut rng = Rng::seed_from(seed);
        let mut net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
        let x = Tensor::randn([n, 1, 8, 8], &mut rng);
        let c_noise: Vec<f32> = (0..n).map(|i| -0.7 + 0.45 * i as f32).collect();
        let stride = 8 * 8;
        for mode in [ExecMode::FakeQuant, ExecMode::NativeInt] {
            let asg = int8_assignment(mode);
            for t in THREADS {
                let batched = with_threads(t, || {
                    let mut rc = RunConfig {
                        train: false,
                        assignment: Some(&asg),
                        observer: None,
                        batched: false,
                        packs: None,
                        delta: None,
                    };
                    net.forward_batch(&x, &c_noise, &mut rc).unwrap()
                });
                for nn in 0..n {
                    let sample = Tensor::from_vec(
                        x.as_slice()[nn * stride..(nn + 1) * stride].to_vec(),
                        [1, 1, 8, 8],
                    )
                    .unwrap();
                    let single = with_threads(t, || {
                        let mut rc = RunConfig {
                            train: false,
                            assignment: Some(&asg),
                            observer: None,
                            batched: false,
                            packs: None,
                            delta: None,
                        };
                        net.forward(&sample, &c_noise[nn..nn + 1], &mut rc).unwrap()
                    });
                    let bv = &batched.as_slice()[nn * stride..(nn + 1) * stride];
                    let sv = single.as_slice();
                    for (j, (a, b)) in bv.iter().zip(sv.iter()).enumerate() {
                        prop_assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "{:?} sample {} elem {} at {} threads",
                            mode, nn, j, t
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]
    /// Serving a random mix of requests (distinct seeds, mixed step
    /// budgets) equals one-at-a-time sampling, bitwise, in both execution
    /// modes and at every thread count.
    #[test]
    fn batched_serving_equals_individual_sampling(
        (net_seed, s0, s1, s2, extra) in
            (0u64..1 << 16, 2usize..4, 2usize..6, 2usize..4, 0u64..1 << 16)
    ) {
        let mut rng = Rng::seed_from(net_seed);
        let mut net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
        let den = Denoiser::new(EdmSchedule::default());
        let requests = [
            ServeRequest::new(0, s0).seed(extra.wrapping_add(1)),
            ServeRequest::new(1, s1).seed(extra.wrapping_add(2)),
            ServeRequest::new(2, s2).seed(extra.wrapping_add(3)),
        ];
        for mode in [ExecMode::FakeQuant, ExecMode::NativeInt] {
            let asg = int8_assignment(mode);
            for t in THREADS {
                let served = with_threads(t, || {
                    serve_batch(&mut net, &den, &requests, Some(&asg)).unwrap()
                });
                for (req, out) in requests.iter().zip(&served) {
                    let single = with_threads(t, || {
                        let mut r = Rng::seed_from(req.seed);
                        sample(
                            &mut net,
                            &den,
                            1,
                            SamplerConfig { steps: req.steps },
                            Some(&asg),
                            &mut r,
                        )
                        .unwrap()
                    });
                    prop_assert_eq!(
                        bits(&out.image),
                        bits(&single),
                        "{:?} request {} at {} threads",
                        mode, req.id, t
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]
    /// Continuous batching holds the same contract under *random
    /// scheduling*: random arrival steps, step budgets, and `max_batch`
    /// (1 degenerates to sequential serving), in both execution modes and
    /// at every thread count, every request's output is bitwise the solo
    /// `sample()` image — admission timing and batch neighbors never leak
    /// into a stream's arithmetic.
    #[test]
    fn continuous_batching_equals_individual_sampling(
        (net_seed, max_batch, arrivals, budgets, extra) in (
            0u64..1 << 16,
            1usize..4,
            (0usize..6, 0usize..6, 0usize..6),
            (2usize..5, 2usize..5, 2usize..5),
            0u64..1 << 16,
        )
    ) {
        let mut rng = Rng::seed_from(net_seed);
        let mut net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
        let den = Denoiser::new(EdmSchedule::default());
        let arrivals = [arrivals.0, arrivals.1, arrivals.2];
        let budgets = [budgets.0, budgets.1, budgets.2];
        let requests: Vec<ScheduledRequest> = (0..3)
            .map(|i| ScheduledRequest::new(
                ServeRequest::new(i as u64, budgets[i]).seed(extra.wrapping_add(i as u64 + 1)),
                arrivals[i],
            ))
            .collect();
        for mode in [ExecMode::FakeQuant, ExecMode::NativeInt] {
            let asg = int8_assignment(mode);
            for t in THREADS {
                let sched = Scheduler::new(den, max_batch);
                let (served, stats) = with_threads(t, || {
                    sched.run(&mut net, &requests, Some(&asg)).unwrap()
                });
                for (req, out) in requests.iter().zip(&served) {
                    prop_assert_eq!(req.request.id, out.id);
                    let single = with_threads(t, || {
                        let mut r = Rng::seed_from(req.request.seed);
                        sample(
                            &mut net,
                            &den,
                            1,
                            SamplerConfig { steps: req.request.steps },
                            Some(&asg),
                            &mut r,
                        )
                        .unwrap()
                    });
                    prop_assert_eq!(
                        bits(&out.image),
                        bits(&single),
                        "{:?} request {} at {} threads (max_batch {})",
                        mode, req.request.id, t, max_batch
                    );
                    // Scheduling bookkeeping is consistent regardless of
                    // the random mix.
                    let rs = stats.request(req.request.id).unwrap();
                    prop_assert_eq!(
                        rs.latency,
                        rs.queue_delay + rs.steps_in_batch + rs.parked_steps
                    );
                    prop_assert_eq!(rs.steps_in_batch, req.request.steps);
                    prop_assert!(rs.admitted_step >= req.arrival_step);
                }
                prop_assert!(stats.batch_occupancy.iter().all(|&o| o <= max_batch));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]
    /// Multi-tenant registry serving holds the contract too: random
    /// tenants, target models, arrival steps, and step budgets, two
    /// resident models, in both execution modes and at every thread
    /// count, every request's output is bitwise the solo `sample()` image
    /// on its model — co-residency, tenancy, fair-share admission, and
    /// pack-cache reuse never leak into a stream's arithmetic. The
    /// fair-share admission order itself is deterministic: a re-run
    /// reproduces every virtual-clock stat exactly.
    #[test]
    fn registry_multi_tenant_serving_equals_solo_sampling(
        (net_seed, max_batch, spec, extra) in (
            0u64..1 << 16,
            1usize..3,
            proptest::collection::vec(
                (0usize..2, 0u32..3, 0usize..6, 2usize..5),
                4,
            ),
            0u64..1 << 16,
        )
    ) {
        let den = Denoiser::new(EdmSchedule::default());
        let requests: Vec<RegistryRequest> = spec
            .iter()
            .enumerate()
            .map(|(i, &(model, tenant, arrival, steps))| {
                RegistryRequest::new(
                    model,
                    ScheduledRequest::new(
                        ServeRequest::new(i as u64, steps)
                            .seed(extra.wrapping_add(i as u64 + 1))
                            .tenant(tenant),
                        arrival,
                    ),
                )
            })
            .collect();
        for mode in [ExecMode::FakeQuant, ExecMode::NativeInt] {
            let asg = int8_assignment(mode);
            // One registry per mode: its pack caches stay warm across the
            // thread sweep, so this also pins that cached packs are
            // thread-count-transparent.
            let mut rng = Rng::seed_from(net_seed);
            let net_a = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
            let net_b = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
            let mut registry = ModelRegistry::new();
            registry.register("a", net_a, Some(asg.clone()), den);
            registry.register("b", net_b, None, den);
            let sched = RegistryScheduler::new(max_batch);
            // Solo references on fresh, identically seeded models.
            let mut rng = Rng::seed_from(net_seed);
            let mut solo_a = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
            let mut solo_b = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
            let mut reference_stats: Option<Vec<_>> = None;
            for t in THREADS {
                let (served, stats) = with_threads(t, || {
                    sched.run(&mut registry, &requests).unwrap()
                });
                for (req, out) in requests.iter().zip(&served) {
                    prop_assert_eq!(req.scheduled.request.id, out.id);
                    let single = with_threads(t, || {
                        let mut r = Rng::seed_from(req.scheduled.request.seed);
                        let (net, asg) = if req.model == 0 {
                            (&mut solo_a, Some(&asg))
                        } else {
                            (&mut solo_b, None)
                        };
                        sample(
                            net,
                            &den,
                            1,
                            SamplerConfig { steps: req.scheduled.request.steps },
                            asg,
                            &mut r,
                        )
                        .unwrap()
                    });
                    prop_assert_eq!(
                        bits(&out.image),
                        bits(&single),
                        "{:?} request {} (model {}, tenant {}) at {} threads",
                        mode,
                        req.scheduled.request.id,
                        req.model,
                        req.scheduled.request.tenant,
                        t
                    );
                }
                // Admission is a pure function of the request set: the
                // virtual-clock stats are identical at every thread count
                // and across runs.
                let clocked: Vec<_> = stats
                    .per_model
                    .iter()
                    .flat_map(|s| s.requests.iter().cloned())
                    .collect();
                match &reference_stats {
                    None => reference_stats = Some(clocked),
                    Some(reference) => prop_assert_eq!(reference, &clocked),
                }
            }
        }
    }
}

/// One scheduling outcome, compared across thread counts and exec modes:
/// (rejected ids, shed ids, preemption count, completed ids in order).
type Decisions = (Vec<u64>, Vec<u64>, usize, Vec<u64>);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]
    /// Priority and Preempt admission — including the preempt-park-resume
    /// path — and every backpressure policy (Reject, ShedOldest,
    /// ShedLargestBudget) keep the bitwise contract: each completed
    /// request equals the solo `sample()` image bit for bit at threads
    /// 1/2/7 in both execution modes, and the scheduling decisions
    /// themselves (who was shed or rejected, how often streams were
    /// preempted, who completed) are identical across every thread count
    /// and execution mode.
    #[test]
    fn admission_and_backpressure_policies_are_bitwise_deterministic(
        ((net_seed, extra), (p0, p1, p2, p3), (a1, a2, a3)) in (
            (0u64..1 << 16, 0u64..1 << 16),
            (0u32..3, 0u32..3, 0u32..3, 0u32..3),
            (1usize..3, 1usize..3, 1usize..3),
        )
    ) {
        let mut rng = Rng::seed_from(net_seed);
        let mut net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
        let den = Denoiser::new(EdmSchedule::default());
        let req = |id: u64, steps: usize, prio: u32, arrival: usize| {
            ScheduledRequest::new(
                ServeRequest::new(id, steps)
                    .seed(extra.wrapping_add(id + 1))
                    .tenant((id % 2) as u32)
                    .priority(prio),
                arrival,
            )
        };
        // One long-budget request arriving alone, then three short ones:
        // under Preempt with max_batch 1 the elephant is guaranteed to be
        // parked for a shorter newcomer and resumed later.
        let spread = vec![
            req(0, 6, p0, 0), req(1, 2, p1, a1), req(2, 3, p2, a2), req(3, 2, p3, a3),
        ];
        // A near-coordinated arrival burst that must overflow a bound of 1.
        let burst = vec![
            req(0, 6, p0, 0), req(1, 2, p1, 1), req(2, 3, p2, 1), req(3, 2, p3, 2),
        ];
        let bound = |policy| QueueBound { capacity: 1, policy };
        let configs: Vec<(&str, Scheduler, Vec<ScheduledRequest>, bool)> = vec![
            (
                "priority",
                Scheduler::new(den, 2).with_policy(AdmissionPolicy::Priority),
                spread.clone(),
                false,
            ),
            (
                "preempt",
                Scheduler::new(den, 1).with_policy(AdmissionPolicy::Preempt),
                spread.clone(),
                true,
            ),
            (
                "reject",
                Scheduler::new(den, 1)
                    .with_queue_bound(bound(BackpressurePolicy::Reject)),
                burst.clone(),
                false,
            ),
            (
                "shed-oldest",
                Scheduler::new(den, 1)
                    .with_queue_bound(bound(BackpressurePolicy::ShedOldest)),
                burst.clone(),
                false,
            ),
            (
                "shed-largest",
                Scheduler::new(den, 1)
                    .with_queue_bound(bound(BackpressurePolicy::ShedLargestBudget)),
                burst.clone(),
                false,
            ),
        ];
        for (label, sched, requests, must_preempt) in &configs {
            // Decisions must not depend on threads *or* execution mode.
            let mut decisions: Option<Decisions> = None;
            for mode in [ExecMode::FakeQuant, ExecMode::NativeInt] {
                let asg = int8_assignment(mode);
                // Solo references, fixed per mode: matching them at every
                // thread count pins both solo equivalence and cross-thread
                // bitwise identity.
                let solo: Vec<(u64, Vec<u32>)> = requests.iter().map(|r| {
                    let mut rr = Rng::seed_from(r.request.seed);
                    let img = with_threads(1, || sample(
                        &mut net,
                        &den,
                        1,
                        SamplerConfig { steps: r.request.steps },
                        Some(&asg),
                        &mut rr,
                    ).unwrap());
                    (r.request.id, bits(&img))
                }).collect();
                for t in THREADS {
                    let (served, stats) = with_threads(t, || {
                        sched.run(&mut net, requests, Some(&asg)).unwrap()
                    });
                    for out in &served {
                        let reference = solo
                            .iter()
                            .find(|(id, _)| *id == out.id)
                            .map(|(_, b)| b)
                            .unwrap();
                        prop_assert_eq!(
                            &bits(&out.image),
                            reference,
                            "{} {:?} request {} at {} threads",
                            label, mode, out.id, t
                        );
                    }
                    let run_decisions = (
                        stats.rejected_ids.clone(),
                        stats.shed_ids.clone(),
                        stats.preemptions,
                        served.iter().map(|o| o.id).collect::<Vec<u64>>(),
                    );
                    // Every submission is accounted for exactly once.
                    prop_assert_eq!(
                        run_decisions.0.len() + run_decisions.1.len()
                            + run_decisions.3.len(),
                        requests.len(),
                        "{} {:?} at {} threads", label, mode, t
                    );
                    if *must_preempt {
                        prop_assert!(
                            stats.preemptions >= 1,
                            "{} must exercise park-resume", label
                        );
                    }
                    match &decisions {
                        None => decisions = Some(run_decisions),
                        Some(reference) => prop_assert_eq!(
                            reference,
                            &run_decisions,
                            "{} {:?} at {} threads",
                            label, mode, t
                        ),
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]
    /// The cost-model layer is decision- and bit-transparent under the
    /// no-op model: with `CostModelConfig::Noop` installed explicitly,
    /// every admission policy — the six pre-existing ones and the two
    /// cost-aware ones — completes every request with the bitwise solo
    /// image at threads 1/2/7 in both execution modes, its decisions are
    /// identical across every thread count and mode, and the cost-aware
    /// policies collapse exactly onto FIFO's admission schedule (zero
    /// estimates can never exhaust a budget or leave an occupancy band).
    #[test]
    fn noop_cost_model_is_decision_and_bit_transparent(
        ((net_seed, extra), (p0, p1, p2), (a1, a2), (s0, s1, s2)) in (
            (0u64..1 << 16, 0u64..1 << 16),
            (0u32..3, 0u32..3, 0u32..3),
            (0usize..4, 0usize..4),
            (2usize..5, 2usize..5, 2usize..5),
        )
    ) {
        let mut rng = Rng::seed_from(net_seed);
        let mut net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
        let den = Denoiser::new(EdmSchedule::default());
        let req = |id: u64, steps: usize, prio: u32, arrival: usize| {
            ScheduledRequest::new(
                ServeRequest::new(id, steps)
                    .seed(extra.wrapping_add(id + 1))
                    .tenant((id % 2) as u32)
                    .priority(prio),
                arrival,
            )
        };
        let requests = vec![req(0, s0, p0, 0), req(1, s1, p1, a1), req(2, s2, p2, a2)];
        let policies = [
            AdmissionPolicy::Fifo,
            AdmissionPolicy::ShortestBudgetFirst,
            AdmissionPolicy::Gang,
            AdmissionPolicy::FairShare,
            AdmissionPolicy::Priority,
            AdmissionPolicy::Preempt,
            AdmissionPolicy::EnergyCapped { budget_pj: 1, window: 1 },
            AdmissionPolicy::OccupancyTarget { lo_pct: 20, hi_pct: 60 },
        ];
        for policy in policies {
            let sched = Scheduler::new(den, 2)
                .with_policy(policy)
                .with_cost_model(CostModelConfig::Noop);
            // Per-request virtual-clock records must not depend on threads
            // or execution mode.
            let mut reference: Option<Vec<sqdm_edm::RequestStats>> = None;
            for mode in [ExecMode::FakeQuant, ExecMode::NativeInt] {
                let asg = int8_assignment(mode);
                let solo: Vec<(u64, Vec<u32>)> = requests.iter().map(|r| {
                    let mut rr = Rng::seed_from(r.request.seed);
                    let img = with_threads(1, || sample(
                        &mut net,
                        &den,
                        1,
                        SamplerConfig { steps: r.request.steps },
                        Some(&asg),
                        &mut rr,
                    ).unwrap());
                    (r.request.id, bits(&img))
                }).collect();
                for t in THREADS {
                    let (served, stats) = with_threads(t, || {
                        sched.run(&mut net, &requests, Some(&asg)).unwrap()
                    });
                    prop_assert_eq!(served.len(), requests.len());
                    for out in &served {
                        let single = solo
                            .iter()
                            .find(|(id, _)| *id == out.id)
                            .map(|(_, b)| b)
                            .unwrap();
                        prop_assert_eq!(
                            &bits(&out.image),
                            single,
                            "{:?} {:?} request {} at {} threads",
                            policy, mode, out.id, t
                        );
                    }
                    // No-op model: the accounting is identically zero.
                    prop_assert_eq!(stats.total_energy_pj(), 0.0);
                    prop_assert_eq!(stats.peak_occupancy(), 0.0);
                    match &reference {
                        None => reference = Some(stats.requests.clone()),
                        Some(r) => prop_assert_eq!(
                            r,
                            &stats.requests,
                            "{:?} {:?} at {} threads",
                            policy, mode, t
                        ),
                    }
                }
            }
            // The cost-aware policies degrade to FIFO's exact schedule.
            if matches!(
                policy,
                AdmissionPolicy::EnergyCapped { .. } | AdmissionPolicy::OccupancyTarget { .. }
            ) {
                let asg = int8_assignment(ExecMode::NativeInt);
                let (_, fifo_stats) = with_threads(1, || {
                    Scheduler::new(den, 2)
                        .run(&mut net, &requests, Some(&asg))
                        .unwrap()
                });
                prop_assert_eq!(
                    &fifo_stats.requests,
                    reference.as_ref().unwrap(),
                    "{:?} must match FIFO under zero costs",
                    policy
                );
            }
        }
    }
}

/// The full-precision (no assignment) path holds the same contract — and
/// the batched flag is a no-op there, so this also pins that plain f32
/// packing is per-sample transparent.
#[test]
fn full_precision_serving_is_bitwise_transparent_across_threads() {
    let mut rng = Rng::seed_from(77);
    let mut net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
    let den = Denoiser::new(EdmSchedule::default());
    let requests = [
        ServeRequest::new(0, 2).seed(5),
        ServeRequest::new(1, 4).seed(6),
    ];
    let reference = with_threads(1, || {
        requests
            .iter()
            .map(|r| {
                let mut rr = Rng::seed_from(r.seed);
                sample(
                    &mut net,
                    &den,
                    1,
                    SamplerConfig { steps: r.steps },
                    None,
                    &mut rr,
                )
                .unwrap()
            })
            .collect::<Vec<_>>()
    });
    for t in THREADS {
        let served = with_threads(t, || serve_batch(&mut net, &den, &requests, None).unwrap());
        for (single, out) in reference.iter().zip(&served) {
            assert_eq!(bits(single), bits(&out.image), "{t} threads");
        }
    }
}
