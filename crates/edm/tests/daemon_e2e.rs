//! Socket-level end-to-end suite for the `sqdmd` daemon.
//!
//! Boots the daemon on an ephemeral port and drives every endpoint over a
//! real TCP connection: register → submit → status → stats → drain. The
//! load-bearing assertion is the serving contract at the network
//! boundary: every image that crosses the wire is **bitwise identical**
//! to the solo `sample()` run with the same `(seed, steps)` on the same
//! model. The CI matrix runs this under both `SQDM_EXEC` modes and
//! `SQDM_THREADS` 1 and 4; a watchdog aborts fast if a listener wedges.

mod common;

use common::{get, post, submit_ok, wait_done, watchdog};
use sqdm_edm::daemon::{self, DaemonConfig};
use sqdm_edm::wire::{json, DrainReply, ModelRegistered, RegisterModel, StatsReply, Submit};
use sqdm_edm::{sample, Denoiser, EdmSchedule, SamplerConfig, UNet, UNetConfig};
use sqdm_quant::{BlockPrecision, ExecMode, PrecisionAssignment, QuantFormat};
use sqdm_tensor::Rng;
use std::time::Duration;

fn int8_env_assignment() -> PrecisionAssignment {
    PrecisionAssignment::uniform(
        sqdm_edm::block_ids::COUNT,
        BlockPrecision::uniform(QuantFormat::int8()),
        "INT8",
    )
    .with_mode(ExecMode::from_env())
}

/// Solo-reference bits for `(model_seed, assignment, request)` on a fresh
/// micro U-Net — the ground truth the daemon must reproduce exactly.
fn solo_bits(
    model_seed: u64,
    assignment: Option<&PrecisionAssignment>,
    seed: u64,
    steps: usize,
) -> Vec<u32> {
    let mut rng = Rng::seed_from(model_seed);
    let mut net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
    let den = Denoiser::new(EdmSchedule::default());
    let mut req_rng = Rng::seed_from(seed);
    let img = sample(
        &mut net,
        &den,
        1,
        SamplerConfig { steps },
        assignment,
        &mut req_rng,
    )
    .unwrap();
    img.as_slice().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn daemon_round_trip_is_bitwise_identical_to_solo_sampling() {
    let _wd = watchdog(600);
    let handle = daemon::spawn(DaemonConfig {
        max_batch: 2,
        ..DaemonConfig::default()
    })
    .unwrap();
    let addr = handle.addr();

    // POST /v1/models: one full-precision and one quantized model, the
    // latter resolving its execution mode from the daemon's SQDM_EXEC.
    let resp = post(
        addr,
        "/v1/models",
        &RegisterModel {
            name: "fp32-ref".into(),
            preset: "micro".into(),
            precision: "fp32".into(),
            seed: 31,
        },
    );
    assert_eq!(resp.status, 200, "{}", resp.body);
    let reg: ModelRegistered = json::from_str(&resp.body).unwrap();
    assert_eq!((reg.model, reg.precision.as_str()), (0, "fp32"));

    let resp = post(
        addr,
        "/v1/models",
        &RegisterModel {
            name: "int8-env".into(),
            preset: "micro".into(),
            precision: "int8".into(),
            seed: 31,
        },
    );
    assert_eq!(resp.status, 200, "{}", resp.body);
    let reg: ModelRegistered = json::from_str(&resp.body).unwrap();
    assert_eq!(reg.model, 1);
    let expected_precision = match ExecMode::from_env() {
        ExecMode::FakeQuant => "int8-fakequant",
        ExecMode::NativeInt => "int8-native",
    };
    assert_eq!(reg.precision, expected_precision);

    // POST /v1/submit: mixed budgets, tenants, and models — more work
    // than max_batch so continuous batching has to queue and re-pack.
    let requests = [
        // (model, id, seed, steps, tenant)
        (0usize, 1u64, 11u64, 3usize, 1u32),
        (0, 2, 12, 5, 2),
        (0, 3, 13, 3, 1),
        (1, 4, 11, 3, 1),
        (1, 5, 14, 4, 3),
    ];
    for &(model, id, seed, steps, tenant) in &requests {
        let accepted = submit_ok(
            addr,
            Submit {
                model,
                id,
                seed,
                steps,
                tenant,
                priority: 0,
            },
        );
        assert_eq!((accepted.id, accepted.model), (id, model));
    }

    // GET /v1/status/{id}: poll to completion and pin the bits.
    let asg = int8_env_assignment();
    for &(model, id, seed, steps, _) in &requests {
        let status = wait_done(addr, id);
        assert_eq!(status.state, "done", "request {id}: {:?}", status.error);
        assert_eq!(status.model, model);
        let image = status.image.expect("done status carries the image");
        assert_eq!(image.dims, vec![1, 1, 8, 8]);
        let reference = solo_bits(31, if model == 1 { Some(&asg) } else { None }, seed, steps);
        assert_eq!(
            image.bits, reference,
            "request {id} bits differ from solo sample()"
        );
    }

    // GET /v1/stats: per-model aggregates with percentiles, tenant
    // rollups ascending, everything over completed requests.
    let resp = get(addr, "/v1/stats");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let stats: StatsReply = json::from_str(&resp.body).unwrap();
    assert!(!stats.draining);
    assert_eq!(stats.active_requests, 0);
    assert_eq!(stats.models.len(), 2);
    assert_eq!(stats.models[0].completed, 3);
    assert_eq!(stats.models[1].completed, 2);
    assert_eq!(stats.models[1].precision, expected_precision);
    for m in &stats.models {
        assert!(m.rounds > 0);
        let (p50, p95, p99) = (
            m.p50_latency.unwrap(),
            m.p95_latency.unwrap(),
            m.p99_latency.unwrap(),
        );
        assert!(p50 <= p95 && p95 <= p99, "percentiles must be monotone");
        assert!(m.mean_latency.unwrap() > 0.0);
        // No --energy-budget: the no-op cost model accounts nothing, and
        // the energy/occupancy aggregates stay absent on the wire.
        assert!(m.energy_per_image_pj.is_none());
        assert!(m.mean_occupancy.is_none());
        assert!(m.peak_occupancy.is_none());
    }
    assert_eq!(
        stats.tenants.iter().map(|t| t.tenant).collect::<Vec<_>>(),
        vec![1, 2, 3]
    );
    assert_eq!(stats.tenants[0].requests, 3);
    assert!(stats.rounds >= 8, "5 requests over max_batch 2 need rounds");

    // POST /v1/drain: idle daemon drains immediately with lifetime stats.
    let resp = post(addr, "/v1/drain", &());
    assert_eq!(resp.status, 200, "{}", resp.body);
    let drain: DrainReply = json::from_str(&resp.body).unwrap();
    assert_eq!(drain.completed, 5);
    assert_eq!(drain.rounds, stats.rounds);

    // Post-drain: submits and registrations get 503; reads still work.
    let resp = post(
        addr,
        "/v1/submit",
        &Submit {
            model: 0,
            id: 99,
            seed: 1,
            steps: 3,
            tenant: 0,
            priority: 0,
        },
    );
    assert_eq!(resp.status, 503, "{}", resp.body);
    let resp = post(
        addr,
        "/v1/models",
        &RegisterModel {
            name: "late".into(),
            preset: "micro".into(),
            precision: "fp32".into(),
            seed: 1,
        },
    );
    assert_eq!(resp.status, 503, "{}", resp.body);
    let resp = get(addr, "/v1/stats");
    assert_eq!(resp.status, 200);
    let stats: StatsReply = json::from_str(&resp.body).unwrap();
    assert!(stats.draining);

    handle.wait_drained();
    handle.shutdown();
}

#[test]
fn energy_budgeted_daemon_reports_energy_and_occupancy_and_stays_bitwise() {
    let _wd = watchdog(600);
    // A roomy per-window budget: admission behaves like FIFO, but every
    // round is accounted through the accelerator cost model, so the
    // energy/occupancy aggregates appear in /v1/stats.
    let handle = daemon::spawn(DaemonConfig {
        max_batch: 2,
        energy_budget: Some(1 << 40),
        ..DaemonConfig::default()
    })
    .unwrap();
    let addr = handle.addr();

    let resp = post(
        addr,
        "/v1/models",
        &RegisterModel {
            name: "m".into(),
            preset: "micro".into(),
            precision: "fp32".into(),
            seed: 31,
        },
    );
    assert_eq!(resp.status, 200, "{}", resp.body);

    let requests = [(1u64, 11u64, 3usize), (2, 12, 4), (3, 13, 3)];
    for &(id, seed, steps) in &requests {
        submit_ok(
            addr,
            Submit {
                model: 0,
                id,
                seed,
                steps,
                tenant: 0,
                priority: 0,
            },
        );
    }
    // The energy-capped policy is pure scheduling: images still cross the
    // wire bitwise identical to solo sampling.
    for &(id, seed, steps) in &requests {
        let status = wait_done(addr, id);
        assert_eq!(status.state, "done", "request {id}: {:?}", status.error);
        let image = status.image.expect("done status carries the image");
        assert_eq!(image.bits, solo_bits(31, None, seed, steps));
    }

    let stats: StatsReply = json::from_str(&get(addr, "/v1/stats").body).unwrap();
    assert_eq!(stats.proto_version, sqdm_edm::wire::PROTO_VERSION);
    let m = &stats.models[0];
    assert_eq!(m.completed, 3);
    let energy = m.energy_per_image_pj.expect("energy aggregate present");
    assert!(energy > 0.0, "energy per image must be positive: {energy}");
    let mean_occ = m.mean_occupancy.expect("mean occupancy present");
    let peak_occ = m.peak_occupancy.expect("peak occupancy present");
    assert!(mean_occ > 0.0 && mean_occ <= 1.0, "mean occupancy {mean_occ}");
    assert!(peak_occ >= mean_occ && peak_occ <= 1.0, "peak {peak_occ}");

    let resp = post(addr, "/v1/drain", &());
    assert_eq!(resp.status, 200, "{}", resp.body);
    let drain: DrainReply = json::from_str(&resp.body).unwrap();
    assert_eq!(drain.completed, 3);
    handle.wait_drained();
    handle.shutdown();
}

#[test]
fn drain_completes_inflight_rounds_and_rejects_new_submits() {
    let _wd = watchdog(600);
    // The round delay throttles the serve loop (sleeping OUTSIDE the
    // lock), giving the drain window a deterministic width: 40 steps at
    // >= 10ms per round keeps the daemon draining for hundreds of ms.
    let handle = daemon::spawn(DaemonConfig {
        max_batch: 2,
        round_delay: Duration::from_millis(10),
        ..DaemonConfig::default()
    })
    .unwrap();
    let addr = handle.addr();

    let resp = post(
        addr,
        "/v1/models",
        &RegisterModel {
            name: "m".into(),
            preset: "micro".into(),
            precision: "fp32".into(),
            seed: 7,
        },
    );
    assert_eq!(resp.status, 200, "{}", resp.body);

    let long = Submit {
        model: 0,
        id: 1,
        seed: 9,
        steps: 40,
        tenant: 0,
        priority: 0,
    };
    submit_ok(addr, long);

    // Fire the drain from a second connection; it blocks until the
    // in-flight request finishes all remaining denoise rounds.
    let drainer = std::thread::spawn(move || post(addr, "/v1/drain", &()));

    // Wait until the daemon reports draining, then a submit must be
    // rejected with 503 while request 1 is still in flight.
    loop {
        let stats: StatsReply = json::from_str(&get(addr, "/v1/stats").body).unwrap();
        if stats.draining {
            assert!(
                stats.active_requests > 0,
                "request 1 should still be in flight while draining"
            );
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let resp = post(
        addr,
        "/v1/submit",
        &Submit {
            model: 0,
            id: 2,
            seed: 1,
            steps: 3,
            tenant: 0,
            priority: 0,
        },
    );
    assert_eq!(resp.status, 503, "{}", resp.body);

    // The drain reply arrives only after request 1 completed, and its
    // final stats count it.
    let resp = drainer.join().unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let drain: DrainReply = json::from_str(&resp.body).unwrap();
    assert_eq!(drain.completed, 1);
    assert!(drain.rounds >= 40, "all 40 rounds must have executed");

    // The in-flight request finished with the exact solo bits — drain
    // never cuts a denoise short.
    let status = wait_done(addr, 1);
    assert_eq!(status.state, "done");
    let image = status.image.unwrap();
    assert_eq!(image.bits, solo_bits(7, None, long.seed, long.steps));

    handle.wait_drained();
    handle.shutdown();
}

#[test]
fn bounded_queue_overflow_returns_429_and_daemon_drains_cleanly() {
    let _wd = watchdog(600);
    // One in-flight slot, one pending slot: the third concurrent request
    // must be refused with 429. The round delay keeps the long request in
    // flight for hundreds of ms so the overflow window is deterministic.
    let handle = daemon::spawn(DaemonConfig {
        max_batch: 1,
        max_pending: Some(1),
        round_delay: Duration::from_millis(10),
        ..DaemonConfig::default()
    })
    .unwrap();
    let addr = handle.addr();

    let resp = post(
        addr,
        "/v1/models",
        &RegisterModel {
            name: "m".into(),
            preset: "micro".into(),
            precision: "fp32".into(),
            seed: 7,
        },
    );
    assert_eq!(resp.status, 200, "{}", resp.body);

    let submit = |id: u64, steps: usize| Submit {
        model: 0,
        id,
        seed: id,
        steps,
        tenant: 0,
        priority: 0,
    };

    // Occupy the single batch slot...
    submit_ok(addr, submit(1, 40));
    loop {
        let status: sqdm_edm::wire::StatusReply =
            json::from_str(&get(addr, "/v1/status/1").body).unwrap();
        if status.state == "running" {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    // ...fill the single pending slot...
    submit_ok(addr, submit(2, 3));
    // ...and the queue is now full: the next submission bounces with 429
    // without entering the request table.
    let resp = post(addr, "/v1/submit", &submit(3, 3));
    assert_eq!(resp.status, 429, "{}", resp.body);
    let err: sqdm_edm::wire::ErrorReply = json::from_str(&resp.body).unwrap();
    assert!(err.error.contains("overloaded"), "{}", err.error);
    assert_eq!(get(addr, "/v1/status/3").status, 404);

    let stats: StatsReply = json::from_str(&get(addr, "/v1/stats").body).unwrap();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.proto_version, sqdm_edm::wire::PROTO_VERSION);
    assert!(!stats.draining, "a 429 must not poison the daemon");

    // A rejected id stays reusable: once the long request finishes and
    // admission drains the queue, the same id is accepted.
    wait_done(addr, 1);
    loop {
        let resp = post(addr, "/v1/submit", &submit(3, 3));
        match resp.status {
            200 => break,
            429 => std::thread::sleep(Duration::from_millis(2)),
            other => panic!("unexpected status {other}: {}", resp.body),
        }
    }

    assert_eq!(wait_done(addr, 2).state, "done");
    assert_eq!(wait_done(addr, 3).state, "done");

    // The daemon drains cleanly after the overload episode, and the drain
    // stats count exactly the three completed requests.
    let resp = post(addr, "/v1/drain", &());
    assert_eq!(resp.status, 200, "{}", resp.body);
    let drain: DrainReply = json::from_str(&resp.body).unwrap();
    assert_eq!(drain.completed, 3);

    handle.wait_drained();
    handle.shutdown();
}
