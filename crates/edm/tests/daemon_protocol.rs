//! Protocol-robustness sweep for the `sqdmd` daemon: every malformed,
//! truncated, oversized, or otherwise hostile input must come back as a
//! clean 4xx over the socket — the daemon never panics, never wedges a
//! connection thread, and keeps serving afterwards.

mod common;

use common::{get, post, submit_ok, wait_done, watchdog};
use sqdm_edm::daemon::{self, DaemonConfig};
use sqdm_edm::wire::{json, RegisterModel, Submit};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

/// Writes raw bytes, half-closes the connection, and returns the parsed
/// status code of whatever the daemon answers.
fn raw(addr: SocketAddr, bytes: &[u8]) -> u16 {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream.write_all(bytes).expect("write");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    text.strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {text:?}"))
}

/// A well-formed POST with an arbitrary body, sent raw.
fn raw_post(addr: SocketAddr, path: &str, body: &str) -> u16 {
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    raw(addr, format!("{head}{body}").as_bytes())
}

fn boot() -> (daemon::DaemonHandle, SocketAddr) {
    let handle = daemon::spawn(DaemonConfig::default()).unwrap();
    let addr = handle.addr();
    let resp = post(
        addr,
        "/v1/models",
        &RegisterModel {
            name: "m".into(),
            preset: "micro".into(),
            precision: "fp32".into(),
            seed: 1,
        },
    );
    assert_eq!(resp.status, 200, "{}", resp.body);
    (handle, addr)
}

/// Proves the daemon is still fully alive: stats answer and a fresh
/// submit runs to completion.
fn assert_healthy(addr: SocketAddr, id: u64) {
    assert_eq!(get(addr, "/v1/stats").status, 200);
    submit_ok(
        addr,
        Submit {
            model: 0,
            id,
            seed: id,
            steps: 2,
            tenant: 0,
            priority: 0,
        },
    );
    assert_eq!(wait_done(addr, id).state, "done");
}

#[test]
fn malformed_inputs_get_clean_4xx_and_never_wedge_the_daemon() {
    let _wd = watchdog(600);
    let (handle, addr) = boot();

    // Truncated request line (peer hangs up mid-line).
    assert_eq!(raw(addr, b"GET /v1/st"), 400);
    // Empty connection.
    assert_eq!(raw(addr, b""), 400);
    // Request line without an HTTP version.
    assert_eq!(raw(addr, b"FOO\r\n\r\n"), 400);
    // Unsupported method on a known path.
    assert_eq!(raw(addr, b"DELETE /v1/stats HTTP/1.1\r\n\r\n"), 405);
    assert_eq!(raw(addr, b"POST /v1/status/1 HTTP/1.1\r\n\r\n"), 405);
    // Unknown paths.
    assert_eq!(raw(addr, b"GET /v1/nope HTTP/1.1\r\n\r\n"), 404);
    assert_eq!(raw(addr, b"GET / HTTP/1.1\r\n\r\n"), 404);
    // Oversized body, rejected on the declared length alone.
    assert_eq!(
        raw(
            addr,
            b"POST /v1/submit HTTP/1.1\r\nContent-Length: 2097152\r\n\r\n"
        ),
        413
    );
    // Unparseable content length.
    assert_eq!(
        raw(
            addr,
            b"POST /v1/submit HTTP/1.1\r\nContent-Length: banana\r\n\r\n"
        ),
        400
    );
    // Body shorter than its declared length (truncated mid-body).
    assert_eq!(
        raw(
            addr,
            b"POST /v1/submit HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"model\""
        ),
        400
    );
    // Malformed JSON.
    assert_eq!(raw_post(addr, "/v1/submit", "{not json"), 400);
    // Valid JSON of the wrong shape.
    assert_eq!(raw_post(addr, "/v1/submit", "{}"), 400);
    assert_eq!(raw_post(addr, "/v1/submit", "[1,2,3]"), 400);
    // Nesting bomb: the parser's depth guard turns it into a 400 instead
    // of a connection-thread stack overflow.
    assert_eq!(raw_post(addr, "/v1/submit", &"[".repeat(50_000)), 400);
    // Bad status ids.
    assert_eq!(raw(addr, b"GET /v1/status/banana HTTP/1.1\r\n\r\n"), 400);
    assert_eq!(raw(addr, b"GET /v1/status/ HTTP/1.1\r\n\r\n"), 400);
    assert_eq!(get(addr, "/v1/status/424242").status, 404);

    // After the whole sweep the daemon still serves requests end to end.
    assert_healthy(addr, 900);
    handle.shutdown();
}

#[test]
fn semantic_rejections_map_to_the_right_status_codes() {
    let _wd = watchdog(600);
    let (handle, addr) = boot();

    // Unknown model.
    let resp = post(
        addr,
        "/v1/submit",
        &Submit {
            model: 99,
            id: 1,
            seed: 1,
            steps: 3,
            tenant: 0,
            priority: 0,
        },
    );
    assert_eq!(resp.status, 404, "{}", resp.body);
    // Step budget below the Karras minimum.
    for steps in [0, 1] {
        let resp = post(
            addr,
            "/v1/submit",
            &Submit {
                model: 0,
                id: 1,
                seed: 1,
                steps,
                tenant: 0,
                priority: 0,
            },
        );
        assert_eq!(resp.status, 400, "steps {steps}: {}", resp.body);
        assert!(resp.body.contains("at least 2 required"), "{}", resp.body);
    }
    // Unknown register preset / precision.
    for (preset, precision) in [("mega", "fp32"), ("micro", "int4")] {
        let resp = post(
            addr,
            "/v1/models",
            &RegisterModel {
                name: "bad".into(),
                preset: preset.into(),
                precision: precision.into(),
                seed: 1,
            },
        );
        assert_eq!(resp.status, 400, "{}", resp.body);
    }

    // Duplicate request id: the in-process EdmError::Config surfaces as
    // 409 Conflict over the wire.
    let first = Submit {
        model: 0,
        id: 7,
        seed: 7,
        steps: 2,
        tenant: 0,
        priority: 0,
    };
    submit_ok(addr, first);
    let resp = post(addr, "/v1/submit", &first);
    assert_eq!(resp.status, 409, "{}", resp.body);
    assert!(
        resp.body.contains("duplicate request id 7"),
        "{}",
        resp.body
    );
    // A completed id stays reserved for the daemon's lifetime.
    wait_done(addr, 7);
    let resp = post(addr, "/v1/submit", &first);
    assert_eq!(resp.status, 409, "{}", resp.body);

    assert_healthy(addr, 901);
    handle.shutdown();
}

#[test]
fn proto_version_skew_is_a_typed_error_not_a_misparse() {
    let _wd = watchdog(600);
    let (handle, addr) = boot();

    // A live daemon of this build always passes the client-side check.
    let resp = get(addr, "/v1/stats");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let stats: sqdm_edm::wire::StatsReply = json::from_str(&resp.body).unwrap();
    assert_eq!(stats.proto_version, sqdm_edm::wire::PROTO_VERSION);
    assert!(sqdm_edm::wire::check_proto_version(stats.proto_version).is_ok());

    // Simulate a *newer* daemon by rewriting the version field of the
    // real reply: the body still decodes (added fields would be absent),
    // but the version check must surface a typed ProtocolMismatch instead
    // of letting the client silently mis-interpret the reply.
    let future = resp.body.replace(
        &format!("\"proto_version\":{}", sqdm_edm::wire::PROTO_VERSION),
        &format!("\"proto_version\":{}", sqdm_edm::wire::PROTO_VERSION + 5),
    );
    assert_ne!(future, resp.body, "version field must be present to rewrite");
    let skewed: sqdm_edm::wire::StatsReply = json::from_str(&future).unwrap();
    match sqdm_edm::wire::check_proto_version(skewed.proto_version) {
        Err(sqdm_edm::EdmError::ProtocolMismatch { expected, got }) => {
            assert_eq!(expected, sqdm_edm::wire::PROTO_VERSION);
            assert_eq!(got, sqdm_edm::wire::PROTO_VERSION + 5);
        }
        other => panic!("expected ProtocolMismatch, got {other:?}"),
    }

    assert_healthy(addr, 902);
    handle.shutdown();
}

#[test]
fn concurrent_hostile_connections_do_not_wedge_serving() {
    let _wd = watchdog(600);
    let (handle, addr) = boot();

    // Hammer the daemon from several threads with a rotation of hostile
    // payloads while it is also serving real work.
    submit_ok(
        addr,
        Submit {
            model: 0,
            id: 50,
            seed: 50,
            steps: 6,
            tenant: 1,
            priority: 0,
        },
    );
    let attackers: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..5 {
                    let status = match (t + i) % 4 {
                        0 => raw(addr, b"GET /v1/st"),
                        1 => raw_post(addr, "/v1/submit", "{broken"),
                        2 => raw(addr, b"PATCH /v1/models HTTP/1.1\r\n\r\n"),
                        _ => raw(addr, b"GET /v1/nowhere HTTP/1.1\r\n\r\n"),
                    };
                    assert!((400..500).contains(&status), "got {status}");
                }
            })
        })
        .collect();
    for a in attackers {
        a.join().expect("attacker thread must not panic");
    }

    // The legitimate request finished untouched and the daemon drains
    // cleanly afterwards.
    assert_eq!(wait_done(addr, 50).state, "done");
    let resp = post(addr, "/v1/drain", &());
    assert_eq!(resp.status, 200, "{}", resp.body);
    let drain: sqdm_edm::wire::DrainReply = json::from_str(&resp.body).unwrap();
    assert_eq!(drain.completed, 1);
    handle.shutdown();
}
