//! Shared helpers for the socket-level daemon test suites.

use serde::Serialize;
use sqdm_edm::wire::client::{self, Response};
use sqdm_edm::wire::{json, Submit, Submitted};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-request client timeout. Generous: CI machines are slow, and the
/// watchdog is the real deadline.
pub const TIMEOUT: Duration = Duration::from_secs(60);

/// Hard-deadline guard: aborts the whole test process if a test wedges,
/// so CI fails fast with a clear message instead of hitting the job
/// timeout. Disarmed when dropped (i.e. when the test finishes).
pub struct Watchdog {
    disarmed: Arc<AtomicBool>,
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.disarmed.store(true, Ordering::SeqCst);
    }
}

/// Arms a watchdog for `secs` seconds.
pub fn watchdog(secs: u64) -> Watchdog {
    let disarmed = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&disarmed);
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_secs(secs));
        if !flag.load(Ordering::SeqCst) {
            eprintln!("daemon test watchdog expired after {secs}s; aborting");
            std::process::abort();
        }
    });
    Watchdog { disarmed }
}

/// POSTs a typed body and returns the raw response.
pub fn post<T: Serialize>(addr: SocketAddr, path: &str, body: &T) -> Response {
    let text = json::to_string(body).expect("request body serializes");
    client::request(addr, "POST", path, Some(&text), TIMEOUT).expect("http round trip")
}

/// GETs a path and returns the raw response.
pub fn get(addr: SocketAddr, path: &str) -> Response {
    client::request(addr, "GET", path, None, TIMEOUT).expect("http round trip")
}

/// Submits one request and asserts acceptance.
pub fn submit_ok(addr: SocketAddr, req: Submit) -> Submitted {
    let resp = post(addr, "/v1/submit", &req);
    assert_eq!(resp.status, 200, "submit failed: {}", resp.body);
    json::from_str(&resp.body).expect("submit reply decodes")
}

/// Polls `/v1/status/{id}` until the request leaves the queued/running
/// states, then returns the decoded reply. The watchdog bounds this loop.
pub fn wait_done(addr: SocketAddr, id: u64) -> sqdm_edm::wire::StatusReply {
    loop {
        let resp = get(addr, &format!("/v1/status/{id}"));
        assert_eq!(resp.status, 200, "status failed: {}", resp.body);
        let status: sqdm_edm::wire::StatusReply =
            json::from_str(&resp.body).expect("status decodes");
        match status.state.as_str() {
            "queued" | "running" => std::thread::sleep(Duration::from_millis(5)),
            _ => return status,
        }
    }
}
