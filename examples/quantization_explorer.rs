//! Quantization explorer: how each data format of the paper's Table I
//! damages a diffusion model's sampling trajectory, plus the Figure 6
//! level-utilization analysis that motivates ReLU+UINT4.
//!
//! Run with `cargo run --release --example quantization_explorer`.

use sqdm::core::experiments::table1::table1_formats;
use sqdm::core::{prepare, sample_divergence, ExperimentScale};
use sqdm::edm::DatasetKind;
use sqdm::quant::{figure6_comparison, quant_rmse, ChannelLayout, QuantFormat};
use sqdm::tensor::{Rng, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Raw per-tensor quantization error of each format on random
    // activations — granularity is everything.
    let mut rng = Rng::seed_from(3);
    let acts = Tensor::randn([1, 24, 16, 16], &mut rng);
    println!("RMS quantization error on N(0,1) activations:");
    for fmt in [
        QuantFormat::int8(),
        QuantFormat::mxint8(),
        QuantFormat::int4(),
        QuantFormat::int4_vsq(),
        QuantFormat::ours_int4(),
    ] {
        let rmse = quant_rmse(&acts, fmt, ChannelLayout::ACTIVATION)?;
        println!(
            "  {:<11} {:>8.5}  ({:.2} bits/element)",
            fmt.name,
            rmse,
            fmt.bits_per_element(256)
        );
    }

    // Figure 6: why ReLU lets the model use unsigned 4-bit.
    let (silu, relu) = figure6_comparison();
    println!("\nquantization level utilization (x in [-1, 1]):");
    println!(
        "  SiLU + signed INT4 : {}/{} levels",
        silu.used_levels, silu.total_levels
    );
    println!(
        "  ReLU + UINT4       : {}/{} levels",
        relu.used_levels, relu.total_levels
    );

    // End-to-end: trajectory divergence of each Table I format on a small
    // trained model (identical noise seeds).
    println!("\ntraining a small model for end-to-end divergence…");
    let scale = ExperimentScale::quick();
    let mut pair = prepare(DatasetKind::AfhqLike, scale)?;
    println!("sampling divergence vs FP32 (lower is better):");
    for (name, assignment) in table1_formats(scale.block_count()) {
        let d = sample_divergence(&mut pair.silu, &pair.denoiser, assignment.as_ref(), &scale)?;
        println!("  {name:<10} {d:>12.6}");
    }
    Ok(())
}
