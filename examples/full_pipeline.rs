//! End-to-end miniature reproduction: train, quantize, trace sparsity,
//! simulate the accelerator, and print the paper's headline numbers — all
//! at quick scale (a few minutes). The `repro_all` binary in `sqdm-bench`
//! runs the same flow at paper scale.
//!
//! Run with `cargo run --release --example full_pipeline`.

use sqdm::core::experiments::{fig12, fig4, fig6, table2};
use sqdm::core::{prepare, ExperimentScale};
use sqdm::edm::DatasetKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::quick();

    // Static analyses (no training needed).
    println!("{}", fig4::run(&scale.model).render());
    println!("{}", fig6::run().render());

    // Train two datasets' model pairs.
    println!("training models (2 datasets x SiLU + ReLU finetune)…\n");
    let mut pairs = vec![
        prepare(DatasetKind::CifarLike, scale)?,
        prepare(DatasetKind::ImageNetLike, scale)?,
    ];

    // Table II: the proposed schemes.
    let t2 = table2::run(&mut pairs, &scale)?;
    println!("{}", t2.render());

    // Figure 12: the system evaluation.
    let f12 = fig12::run(&mut pairs, &scale)?;
    println!("{}", f12.render());

    println!("headline (paper → this run):");
    println!(
        "  sparsity speed-up 1.83x → {:.2}x | energy saving 51.5% → {:.1}% | total 6.91x → {:.2}x",
        f12.mean_sparsity_speedup(),
        f12.mean_energy_saving() * 100.0,
        f12.mean_total_speedup()
    );
    Ok(())
}
