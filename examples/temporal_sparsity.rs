//! Temporal sparsity explorer: train a ReLU diffusion model, record the
//! per-channel sparsity of its activations across sampling time steps
//! (paper Figure 7), and analyze the detector threshold (Figure 11, left).
//!
//! Run with `cargo run --release --example temporal_sparsity`.

use sqdm::core::experiments::fig11::combined_trace;
use sqdm::core::{prepare, record_traces, ExperimentScale};
use sqdm::edm::{block_ids, DatasetKind};
use sqdm::sparsity::{best_balanced_threshold, threshold_sweep, PAPER_THRESHOLD};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training SiLU model and ReLU-finetuned variant…");
    let scale = ExperimentScale::quick();
    let mut pair = prepare(DatasetKind::CifarLike, scale)?;

    // Average activation sparsity of both models (paper §III-C: ~10% vs
    // ~65%).
    let silu_traces = record_traces(&mut pair.silu, &pair.denoiser, &scale, None)?;
    let relu_traces = record_traces(&mut pair.relu, &pair.denoiser, &scale, None)?;
    let mean = |ts: &std::collections::BTreeMap<_, sqdm::sparsity::TemporalTrace>| {
        let v: Vec<f64> = ts.values().map(|t| t.mean_sparsity()).collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    println!(
        "mean activation sparsity: SiLU {:.1}%  |  ReLU {:.1}%",
        mean(&silu_traces) * 100.0,
        mean(&relu_traces) * 100.0
    );

    // Figure 7 bitmap for one mid-network layer.
    let key = (block_ids::ENC_LO[1], 1);
    let trace = &relu_traces[&key];
    println!(
        "\ntemporal per-channel sparsity of layer {key:?} (rows = channels, cols = steps, '#' = sparse):"
    );
    print!("{}", trace.ascii_bitmap(PAPER_THRESHOLD));
    println!(
        "flip rate at the {:.0}% threshold: {:.2} (channels change class between steps)",
        PAPER_THRESHOLD * 100.0,
        trace.flip_rate(PAPER_THRESHOLD)
    );

    // Figure 11 (left): threshold sweep over the whole model.
    let combined = combined_trace(&relu_traces);
    let points = threshold_sweep(&combined, &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7]);
    println!("\nthreshold sweep (whole model):");
    println!("  thresh  sparse-frac  sparse-portion  imbalance");
    for p in &points {
        println!(
            "  {:>5.1}   {:>9.1}%   {:>12.1}%   {:>8.3}",
            p.threshold,
            p.sparse_channel_fraction * 100.0,
            p.sparse_portion_sparsity * 100.0,
            p.imbalance
        );
    }
    if let Some(best) = best_balanced_threshold(&points) {
        println!(
            "best-balanced threshold: {:.1} (paper selects {:.1})",
            best.threshold, PAPER_THRESHOLD
        );
    }
    Ok(())
}
