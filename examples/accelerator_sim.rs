//! Accelerator simulation walkthrough: run one convolution layer through
//! the heterogeneous dense/sparse accelerator and the 2-DPE dense
//! baseline, at several precisions and sparsity levels, and inspect the
//! cycle and energy breakdowns.
//!
//! Run with `cargo run --release --example accelerator_sim`.

use sqdm::accel::{Accelerator, AcceleratorConfig, ConvWorkload, LayerQuant, SparseChannel};
use sqdm::sparsity::ChannelPartition;
use sqdm::tensor::{Rng, Tensor};

fn main() {
    let het = Accelerator::new(AcceleratorConfig::paper());
    let base = Accelerator::new(AcceleratorConfig::dense_baseline());

    // A mid-network EDM layer: 24->24 channels, 3x3, 16x16 outputs.
    println!("layer: 24->24 channels, 3x3 kernel, 16x16 output\n");
    println!(
        "{:>9} {:>10} {:>12} {:>12} {:>10}",
        "sparsity", "precision", "base cycles", "ours cycles", "speed-up"
    );
    for sparsity in [0.0, 0.35, 0.65, 0.85] {
        for quant in [LayerQuant::fp16(), LayerQuant::int8(), LayerQuant::int4()] {
            let w = ConvWorkload::uniform(24, 24, 3, 3, 16, 16, sparsity);
            let p = ChannelPartition::balanced(&w.act_sparsity, 0.9);
            let sb = base.run_layer(&w, None, quant);
            let sh = het.run_layer(&w, Some(&p), quant);
            println!(
                "{:>8.0}% {:>10} {:>12} {:>12} {:>9.2}x",
                sparsity * 100.0,
                format!("{:?}", quant.mac),
                sb.cycles,
                sh.cycles,
                sb.cycles as f64 / sh.cycles as f64
            );
        }
    }

    // Energy breakdown at the paper's operating point.
    let w = ConvWorkload::uniform(24, 24, 3, 3, 16, 16, 0.65);
    let p = ChannelPartition::balanced(&w.act_sparsity, 0.9);
    let sh = het.run_layer(&w, Some(&p), LayerQuant::int4());
    let sb = base.run_layer(&w, None, LayerQuant::int4());
    println!("\nenergy breakdown at 65% sparsity, INT4 (pJ):");
    println!(
        "  ours    : compute {:>9.0}  sram {:>8.0}  noc {:>7.0}  leakage {:>7.0}  total {:>9.0}",
        sh.energy.compute_pj,
        sh.energy.sram_pj,
        sh.energy.noc_pj,
        sh.energy.leakage_pj,
        sh.energy.total_pj()
    );
    println!(
        "  baseline: compute {:>9.0}  sram {:>8.0}  noc {:>7.0}  leakage {:>7.0}  total {:>9.0}",
        sb.energy.compute_pj,
        sb.energy.sram_pj,
        sb.energy.noc_pj,
        sb.energy.leakage_pj,
        sb.energy.total_pj()
    );
    println!(
        "  saving  : {:.1}%",
        (1.0 - sh.energy.total_pj() / sb.energy.total_pj()) * 100.0
    );

    // The sparse storage format the SPE consumes.
    let mut rng = Rng::seed_from(1);
    let act = Tensor::randn([1, 1, 16, 16], &mut rng).map(|v| v.max(0.0));
    let chan = SparseChannel::encode_channels(&act).remove(0);
    println!(
        "\nsparse channel format: {} elements, {} nonzero ({:.0}% sparse), {} bits vs {} dense",
        chan.len(),
        chan.nnz(),
        chan.sparsity() * 100.0,
        chan.storage_bits(4),
        chan.dense_bits(4)
    );
}
