//! Quickstart: train a tiny EDM on a synthetic dataset, sample from it,
//! then sample again under the paper's 4-bit mixed-precision scheme and
//! compare.
//!
//! Run with `cargo run --release --example quickstart`.

use sqdm::edm::{
    block_profiles, Dataset, DatasetKind, Denoiser, EdmSchedule, SamplerConfig, TrainConfig, UNet,
    UNetConfig,
};
use sqdm::quant::PrecisionAssignment;
use sqdm::tensor::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a small EDM U-Net and its denoiser.
    let mut rng = Rng::seed_from(42);
    let cfg = UNetConfig {
        in_channels: 1,
        base_channels: 12,
        emb_dim: 16,
        image_size: 16,
        groups: 4,
    };
    let mut net = UNet::new(cfg, &mut rng)?;
    let den = Denoiser::new(EdmSchedule::default());
    println!("model: {} parameters", net.param_count());

    // 2. Train briefly on the CIFAR-like synthetic distribution.
    let ds = Dataset::new(DatasetKind::CifarLike, 1, 16);
    let report = sqdm::edm::train(
        &mut net,
        &den,
        &ds,
        TrainConfig {
            steps: 120,
            batch: 8,
            lr: 2e-3,
        },
        &mut rng,
    )?;
    println!(
        "training: loss {:.4} -> {:.4}",
        report.early_loss(),
        report.late_loss()
    );

    // 3. Swap SiLU for ReLU and finetune (paper §III-B).
    sqdm::edm::finetune_relu(
        &mut net,
        &den,
        &ds,
        TrainConfig {
            steps: 40,
            batch: 8,
            lr: 1e-3,
        },
        &mut rng,
    )?;

    // 4. Sample at full precision and under the 4-bit mixed scheme.
    let sampler = SamplerConfig { steps: 10 };
    let mut r1 = Rng::seed_from(7);
    let full = sqdm::edm::sample(&mut net, &den, 4, sampler, None, &mut r1)?;
    let mp = PrecisionAssignment::paper_mixed(&block_profiles(&cfg), 1, 1, true);
    let mut r2 = Rng::seed_from(7);
    let quant = sqdm::edm::sample(&mut net, &den, 4, sampler, Some(&mp), &mut r2)?;

    println!(
        "4-bit sampling divergence from FP32 (same seeds): {:.5}",
        full.mse(&quant)?
    );
    println!(
        "sample range: full [{:.2}, {:.2}], 4-bit [{:.2}, {:.2}]",
        full.min(),
        full.max(),
        quant.min(),
        quant.max()
    );

    // 5. Render the first generated image as ASCII.
    println!("\nfirst generated sample (ASCII, 4-bit model):");
    let img = quant.channel(0, 0)?;
    let ramp = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    for y in 0..16 {
        let mut line = String::new();
        for x in 0..16 {
            let v = (img.get(&[y, x])?.clamp(-1.0, 1.0) + 1.0) / 2.0;
            line.push(ramp[((v * 9.0) as usize).min(9)]);
            line.push(ramp[((v * 9.0) as usize).min(9)]);
        }
        println!("{line}");
    }
    Ok(())
}
