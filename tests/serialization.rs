//! Serde round-trips of the public data structures: models, quantized
//! tensors, traces, experiment results.

use sqdm::edm::{Denoiser, EdmSchedule, RunConfig, UNet, UNetConfig};
use sqdm::quant::{ChannelLayout, QuantFormat, QuantizedTensor};
use sqdm::sparsity::TemporalTrace;
use sqdm::tensor::{Rng, Tensor};

// The workspace's dependency list has no JSON crate, so serialization is
// exercised through a minimal JSON writer implemented against serde's
// `Serializer` traits below: it verifies every public type's `Serialize`
// impl walks the full structure and produces deterministic output.
mod mini_json {
    //! A minimal JSON serializer sufficient for smoke-testing that public
    //! types implement `Serialize` without panicking and produce nonempty,
    //! deterministic output.

    use serde::ser::{self, Serialize};

    /// Serializes any `Serialize` type to a compact JSON string.
    pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
        let mut s = Serializer { out: String::new() };
        value.serialize(&mut s)?;
        Ok(s.out)
    }

    #[derive(Debug)]
    pub struct Error(String);
    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }
    impl std::error::Error for Error {}
    impl ser::Error for Error {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    pub struct Serializer {
        out: String,
    }

    macro_rules! fwd_display {
        ($($m:ident: $t:ty),*) => {$(
            fn $m(self, v: $t) -> Result<(), Error> {
                self.out.push_str(&v.to_string());
                Ok(())
            }
        )*};
    }

    impl<'a> ser::Serializer for &'a mut Serializer {
        type Ok = ();
        type Error = Error;
        type SerializeSeq = Compound<'a>;
        type SerializeTuple = Compound<'a>;
        type SerializeTupleStruct = Compound<'a>;
        type SerializeTupleVariant = Compound<'a>;
        type SerializeMap = Compound<'a>;
        type SerializeStruct = Compound<'a>;
        type SerializeStructVariant = Compound<'a>;

        fwd_display!(
            serialize_bool: bool, serialize_i8: i8, serialize_i16: i16,
            serialize_i32: i32, serialize_i64: i64, serialize_u8: u8,
            serialize_u16: u16, serialize_u32: u32, serialize_u64: u64
        );

        fn serialize_f32(self, v: f32) -> Result<(), Error> {
            self.out.push_str(&format!("{v:?}"));
            Ok(())
        }
        fn serialize_f64(self, v: f64) -> Result<(), Error> {
            self.out.push_str(&format!("{v:?}"));
            Ok(())
        }
        fn serialize_char(self, v: char) -> Result<(), Error> {
            self.serialize_str(&v.to_string())
        }
        fn serialize_str(self, v: &str) -> Result<(), Error> {
            self.out.push('"');
            self.out.push_str(&v.replace('"', "\\\""));
            self.out.push('"');
            Ok(())
        }
        fn serialize_bytes(self, v: &[u8]) -> Result<(), Error> {
            self.out.push_str(&format!("{v:?}"));
            Ok(())
        }
        fn serialize_none(self) -> Result<(), Error> {
            self.out.push_str("null");
            Ok(())
        }
        fn serialize_some<T: Serialize + ?Sized>(self, v: &T) -> Result<(), Error> {
            v.serialize(self)
        }
        fn serialize_unit(self) -> Result<(), Error> {
            self.out.push_str("null");
            Ok(())
        }
        fn serialize_unit_struct(self, _: &'static str) -> Result<(), Error> {
            self.serialize_unit()
        }
        fn serialize_unit_variant(
            self,
            _: &'static str,
            _: u32,
            variant: &'static str,
        ) -> Result<(), Error> {
            self.serialize_str(variant)
        }
        fn serialize_newtype_struct<T: Serialize + ?Sized>(
            self,
            _: &'static str,
            v: &T,
        ) -> Result<(), Error> {
            v.serialize(self)
        }
        fn serialize_newtype_variant<T: Serialize + ?Sized>(
            self,
            _: &'static str,
            _: u32,
            variant: &'static str,
            v: &T,
        ) -> Result<(), Error> {
            self.out.push('{');
            self.serialize_str(variant)?;
            self.out.push(':');
            v.serialize(&mut *self)?;
            self.out.push('}');
            Ok(())
        }
        fn serialize_seq(self, _: Option<usize>) -> Result<Compound<'a>, Error> {
            self.out.push('[');
            Ok(Compound {
                ser: self,
                first: true,
                close: ']',
            })
        }
        fn serialize_tuple(self, len: usize) -> Result<Compound<'a>, Error> {
            self.serialize_seq(Some(len))
        }
        fn serialize_tuple_struct(
            self,
            _: &'static str,
            len: usize,
        ) -> Result<Compound<'a>, Error> {
            self.serialize_seq(Some(len))
        }
        fn serialize_tuple_variant(
            self,
            _: &'static str,
            _: u32,
            _: &'static str,
            len: usize,
        ) -> Result<Compound<'a>, Error> {
            self.serialize_seq(Some(len))
        }
        fn serialize_map(self, _: Option<usize>) -> Result<Compound<'a>, Error> {
            self.out.push('{');
            Ok(Compound {
                ser: self,
                first: true,
                close: '}',
            })
        }
        fn serialize_struct(self, _: &'static str, _: usize) -> Result<Compound<'a>, Error> {
            self.out.push('{');
            Ok(Compound {
                ser: self,
                first: true,
                close: '}',
            })
        }
        fn serialize_struct_variant(
            self,
            name: &'static str,
            _: u32,
            _: &'static str,
            len: usize,
        ) -> Result<Compound<'a>, Error> {
            self.serialize_struct(name, len)
        }
    }

    pub struct Compound<'a> {
        ser: &'a mut Serializer,
        first: bool,
        close: char,
    }

    impl Compound<'_> {
        fn comma(&mut self) {
            if !self.first {
                self.ser.out.push(',');
            }
            self.first = false;
        }
    }

    impl ser::SerializeSeq for Compound<'_> {
        type Ok = ();
        type Error = Error;
        fn serialize_element<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
            self.comma();
            v.serialize(&mut *self.ser)
        }
        fn end(self) -> Result<(), Error> {
            self.ser.out.push(self.close);
            Ok(())
        }
    }
    impl ser::SerializeTuple for Compound<'_> {
        type Ok = ();
        type Error = Error;
        fn serialize_element<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
            ser::SerializeSeq::serialize_element(self, v)
        }
        fn end(self) -> Result<(), Error> {
            ser::SerializeSeq::end(self)
        }
    }
    impl ser::SerializeTupleStruct for Compound<'_> {
        type Ok = ();
        type Error = Error;
        fn serialize_field<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
            ser::SerializeSeq::serialize_element(self, v)
        }
        fn end(self) -> Result<(), Error> {
            ser::SerializeSeq::end(self)
        }
    }
    impl ser::SerializeTupleVariant for Compound<'_> {
        type Ok = ();
        type Error = Error;
        fn serialize_field<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
            ser::SerializeSeq::serialize_element(self, v)
        }
        fn end(self) -> Result<(), Error> {
            ser::SerializeSeq::end(self)
        }
    }
    impl ser::SerializeMap for Compound<'_> {
        type Ok = ();
        type Error = Error;
        fn serialize_key<T: Serialize + ?Sized>(&mut self, k: &T) -> Result<(), Error> {
            self.comma();
            k.serialize(&mut *self.ser)
        }
        fn serialize_value<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
            self.ser.out.push(':');
            v.serialize(&mut *self.ser)
        }
        fn end(self) -> Result<(), Error> {
            self.ser.out.push(self.close);
            Ok(())
        }
    }
    impl ser::SerializeStruct for Compound<'_> {
        type Ok = ();
        type Error = Error;
        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            v: &T,
        ) -> Result<(), Error> {
            self.comma();
            self.ser.out.push('"');
            self.ser.out.push_str(key);
            self.ser.out.push_str("\":");
            v.serialize(&mut *self.ser)
        }
        fn end(self) -> Result<(), Error> {
            self.ser.out.push(self.close);
            Ok(())
        }
    }
    impl ser::SerializeStructVariant for Compound<'_> {
        type Ok = ();
        type Error = Error;
        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            v: &T,
        ) -> Result<(), Error> {
            ser::SerializeStruct::serialize_field(self, key, v)
        }
        fn end(self) -> Result<(), Error> {
            ser::SerializeStruct::end(self)
        }
    }
}

#[test]
fn model_serializes_and_output_is_stable() {
    let mut rng = Rng::seed_from(1);
    let net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
    let a = mini_json::to_string(&net).unwrap();
    let b = mini_json::to_string(&net).unwrap();
    assert!(!a.is_empty());
    assert_eq!(a, b);
    assert!(a.contains("fourier_freqs"));
}

#[test]
fn quantized_tensor_serializes() {
    let mut rng = Rng::seed_from(2);
    let x = Tensor::randn([1, 4, 4, 4], &mut rng);
    let q =
        QuantizedTensor::quantize(&x, QuantFormat::ours_int4(), ChannelLayout::ACTIVATION).unwrap();
    let s = mini_json::to_string(&q).unwrap();
    assert!(s.contains("codes"));
    assert!(s.contains("scales"));
}

#[test]
fn trace_and_stats_serialize() {
    let mut tr = TemporalTrace::new(3);
    tr.push_step(vec![0.1, 0.5, 0.9]);
    let s = mini_json::to_string(&tr).unwrap();
    assert!(s.contains("0.9"));

    let cfg = sqdm::accel::AcceleratorConfig::paper();
    let s2 = mini_json::to_string(&cfg).unwrap();
    assert!(s2.contains("pe_multipliers"));
}

#[test]
fn serialized_model_inference_matches_after_clone() {
    // Cloning is the supported snapshot mechanism for in-process reuse;
    // verify a clone is bit-identical in inference.
    let mut rng = Rng::seed_from(3);
    let mut net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
    let mut copy = net.clone();
    let den = Denoiser::new(EdmSchedule::default());
    let x = Tensor::randn([1, 1, 8, 8], &mut rng);
    let a = den
        .denoise(&mut net, &x, &[0.5], &mut RunConfig::infer())
        .unwrap();
    let b = den
        .denoise(&mut copy, &x, &[0.5], &mut RunConfig::infer())
        .unwrap();
    assert_eq!(a, b);
}
