//! Cross-crate integration: the full SQ-DM pipeline from training through
//! accelerator simulation, exercised through the public facade crate.

use sqdm::core::{prepare, record_traces, sample_divergence, ExperimentScale};
use sqdm::edm::DatasetKind;
use sqdm::quant::{PrecisionAssignment, QuantFormat};
use sqdm::sparsity::TemporalTrace;
use std::collections::BTreeMap;
use std::sync::OnceLock;

fn shared() -> &'static (
    sqdm::core::TrainedPair,
    ExperimentScale,
    std::time::Duration,
) {
    static PAIR: OnceLock<(
        sqdm::core::TrainedPair,
        ExperimentScale,
        std::time::Duration,
    )> = OnceLock::new();
    PAIR.get_or_init(|| {
        let scale = ExperimentScale::quick();
        let start = std::time::Instant::now();
        let pair = prepare(DatasetKind::CifarLike, scale).unwrap();
        (pair, scale, start.elapsed())
    })
}

#[test]
fn quick_fixture_stays_in_ci_budget() {
    // The whole suite shares one prepare() call; if ExperimentScale::quick()
    // grows past this budget, shrink it rather than raising the bound. The
    // override exists for slow runners (emulation, coverage instrumentation),
    // not for absorbing fixture growth.
    let budget = std::env::var("SQDM_FIXTURE_BUDGET_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(60u64);
    let (_, _, elapsed) = shared();
    assert!(
        *elapsed < std::time::Duration::from_secs(budget),
        "shared prepare() fixture took {elapsed:?}, budget is {budget}s — shrink ExperimentScale::quick()"
    );
}

#[test]
fn relu_finetune_preserves_generation_quality() {
    let (pair, scale, _) = shared();
    let mut pair = pair.clone();
    let silu_sfid =
        sqdm::core::eval_sfid(&mut pair.silu, &pair.denoiser, &pair.dataset, None, scale).unwrap();
    let relu_sfid =
        sqdm::core::eval_sfid(&mut pair.relu, &pair.denoiser, &pair.dataset, None, scale).unwrap();
    // §III-B: the ReLU model achieves similar image quality. Allow a wide
    // band at this tiny scale, but it must be the same order of magnitude.
    assert!(
        relu_sfid < 3.0 * silu_sfid + 1.0,
        "silu {silu_sfid} relu {relu_sfid}"
    );
}

#[test]
fn mixed_precision_hurts_less_than_uniform_int4() {
    let (pair, scale, _) = shared();
    let mut pair = pair.clone();
    let n = scale.block_count();
    let uniform4 = PrecisionAssignment::uniform(
        n,
        sqdm::quant::BlockPrecision::uniform(QuantFormat::int4()),
        "INT4",
    );
    let mixed =
        PrecisionAssignment::paper_mixed(&sqdm::edm::block_profiles(&scale.model), 1, 1, false);
    let d_uniform =
        sample_divergence(&mut pair.silu, &pair.denoiser, Some(&uniform4), scale).unwrap();
    let d_mixed = sample_divergence(&mut pair.silu, &pair.denoiser, Some(&mixed), scale).unwrap();
    assert!(
        d_mixed < d_uniform,
        "mixed {d_mixed} should beat uniform int4 {d_uniform}"
    );
}

#[test]
fn quantization_does_not_destroy_sparsity_traces() {
    // The accelerator consumes quantized activations; symmetric formats
    // preserve exact zeros, so sparsity under 4-bit must not collapse.
    let (pair, scale, _) = shared();
    let mut pair = pair.clone();
    let mixed =
        PrecisionAssignment::paper_mixed(&sqdm::edm::block_profiles(&scale.model), 1, 1, true);
    let plain = record_traces(&mut pair.relu, &pair.denoiser, scale, None).unwrap();
    let quant = record_traces(&mut pair.relu, &pair.denoiser, scale, Some(&mixed)).unwrap();
    let mean = |ts: &BTreeMap<(usize, usize), TemporalTrace>| {
        let v: Vec<f64> = ts.values().map(|t| t.mean_sparsity()).collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let (mp, mq) = (mean(&plain), mean(&quant));
    assert!(
        mq > 0.7 * mp,
        "quantized sparsity {mq} collapsed vs plain {mp}"
    );
}

#[test]
fn accelerator_speedup_holds_on_real_traces() {
    use sqdm::accel::{Accelerator, AcceleratorConfig, LayerQuant, RunStats};
    use sqdm::sparsity::ChannelPartition;

    let (pair, scale, _) = shared();
    let mut pair = pair.clone();
    let traces = record_traces(&mut pair.relu, &pair.denoiser, scale, None).unwrap();
    let sites = sqdm::core::conv_sites(&scale.model);
    let het = Accelerator::new(AcceleratorConfig::paper());
    let base = Accelerator::new(AcceleratorConfig::dense_baseline());
    let mut ours = RunStats::default();
    let mut dense = RunStats::default();
    for step in 0..scale.sampler.steps {
        let ws = sqdm::core::workloads_at_step(&sites, &traces, step).unwrap();
        for w in &ws {
            let p = ChannelPartition::balanced(&w.act_sparsity, 0.9);
            ours.push(&het.run_layer(w, Some(&p), LayerQuant::int4()));
            dense.push(&base.run_layer(w, None, LayerQuant::int4()));
        }
    }
    let speedup = ours.speedup_vs(&dense);
    assert!(
        speedup > 1.0 && speedup < 2.5,
        "speed-up {speedup} outside plausible band"
    );
    let saving = ours.energy_saving_vs(&dense);
    assert!(saving > 0.0 && saving < 0.8, "energy saving {saving}");
}
