//! Property-based tests of the quantization stack's invariants.

use proptest::prelude::*;
use sqdm::quant::{
    fake_quant, ChannelLayout, Granularity, IntGrid, QuantFormat, QuantizedTensor, ScaleEncoding,
};
use sqdm::tensor::Tensor;

fn any_format() -> impl Strategy<Value = QuantFormat> {
    (
        prop_oneof![Just(4u8), Just(8u8)],
        any::<bool>(),
        prop_oneof![
            Just(Granularity::PerTensor),
            Just(Granularity::PerChannel),
            Just(Granularity::PerBlock(16)),
            Just(Granularity::PerBlock(32)),
        ],
        prop_oneof![
            Just(ScaleEncoding::F32),
            Just(ScaleEncoding::Fp8E4M3),
            Just(ScaleEncoding::PowerOfTwo),
            Just(ScaleEncoding::VsqTwoLevel { scale_bits: 4 }),
        ],
    )
        .prop_map(|(bits, signed, granularity, scale_encoding)| QuantFormat {
            grid: if signed {
                IntGrid::signed(bits)
            } else {
                IntGrid::unsigned(bits)
            },
            granularity,
            scale_encoding,
            name: "prop",
        })
}

fn small_tensor() -> impl Strategy<Value = Tensor> {
    (1usize..3, 1usize..5, 1usize..5, 1usize..9).prop_flat_map(|(n, c, h, w)| {
        proptest::collection::vec(-100.0f32..100.0, n * c * h * w)
            .prop_map(move |data| Tensor::from_vec(data, [n, c, h, w]).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fake quantization never changes shape, and every reconstructed
    /// value is finite.
    #[test]
    fn fake_quant_preserves_shape_and_finiteness(
        x in small_tensor(),
        fmt in any_format(),
    ) {
        let y = fake_quant(&x, fmt, ChannelLayout::ACTIVATION).unwrap();
        prop_assert_eq!(y.dims(), x.dims());
        prop_assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    /// Reconstruction error is bounded by one quantization step of the
    /// group's scale: |x - q(x)| <= scale/2 + epsilon for unsaturated
    /// signed grids (round-up scale encodings guarantee no saturation of
    /// the group max).
    #[test]
    fn signed_error_bounded_by_half_step(
        x in small_tensor(),
        granularity in prop_oneof![
            Just(Granularity::PerTensor),
            Just(Granularity::PerBlock(16)),
        ],
    ) {
        let fmt = QuantFormat {
            grid: IntGrid::signed(8),
            granularity,
            scale_encoding: ScaleEncoding::F32,
            name: "prop",
        };
        let q = QuantizedTensor::quantize(&x, fmt, ChannelLayout::ACTIVATION).unwrap();
        let y = q.dequantize();
        // One global bound: the largest scale in the tensor.
        let max_scale = q.scales().iter().fold(0.0f32, |m, &s| m.max(s));
        for (&a, &b) in x.as_slice().iter().zip(y.as_slice()) {
            prop_assert!(
                (a - b).abs() <= 0.5 * max_scale + 1e-5,
                "err {} > half-step {}", (a - b).abs(), 0.5 * max_scale
            );
        }
    }

    /// Exact zeros always survive symmetric quantization — the invariant
    /// that lets quantization compose with activation sparsity.
    #[test]
    fn zeros_survive_quantization(
        mut x in small_tensor(),
        fmt in any_format(),
        zero_mask in proptest::collection::vec(any::<bool>(), 1..256),
    ) {
        for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
            if zero_mask[i % zero_mask.len()] {
                *v = 0.0;
            }
        }
        let before = x.sparsity();
        let y = fake_quant(&x, fmt, ChannelLayout::ACTIVATION).unwrap();
        prop_assert!(y.sparsity() >= before);
        for (&a, &b) in x.as_slice().iter().zip(y.as_slice()) {
            if a == 0.0 {
                prop_assert_eq!(b, 0.0);
            }
        }
    }

    /// With exact (f32) scales quantization is idempotent: re-quantizing
    /// an already-quantized tensor is the identity.
    #[test]
    fn quantization_idempotent_with_f32_scales(x in small_tensor()) {
        let fmt = QuantFormat {
            grid: IntGrid::signed(4),
            granularity: Granularity::PerBlock(32),
            scale_encoding: ScaleEncoding::F32,
            name: "prop",
        };
        let once = fake_quant(&x, fmt, ChannelLayout::ACTIVATION).unwrap();
        let twice = fake_quant(&once, fmt, ChannelLayout::ACTIVATION).unwrap();
        for (&a, &b) in once.as_slice().iter().zip(twice.as_slice()) {
            prop_assert!((a - b).abs() <= 1e-6 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    /// With lossy (FP8 round-up) scale encoding, re-quantization may drift
    /// — but never by more than one quantization step of the new scale.
    #[test]
    fn requantization_drift_is_bounded_for_fp8_scales(x in small_tensor()) {
        let fmt = QuantFormat::ours_int4();
        let once = fake_quant(&x, fmt, ChannelLayout::ACTIVATION).unwrap();
        let q2 = QuantizedTensor::quantize(&once, fmt, ChannelLayout::ACTIVATION).unwrap();
        let twice = q2.dequantize();
        let max_scale = q2.scales().iter().fold(0.0f32, |m, &s| m.max(s));
        for (&a, &b) in once.as_slice().iter().zip(twice.as_slice()) {
            prop_assert!(
                (a - b).abs() <= max_scale * 0.5 + 1e-5,
                "drift {} exceeds half-step {}", (a - b).abs(), 0.5 * max_scale
            );
        }
    }

    /// More bits never hurt: 8-bit RMSE <= 4-bit RMSE at equal granularity.
    #[test]
    fn more_bits_never_hurt(x in small_tensor()) {
        let mk = |bits: u8| QuantFormat {
            grid: IntGrid::signed(bits),
            granularity: Granularity::PerBlock(16),
            scale_encoding: ScaleEncoding::F32,
            name: "prop",
        };
        let e8 = sqdm::quant::quant_rmse(&x, mk(8), ChannelLayout::ACTIVATION).unwrap();
        let e4 = sqdm::quant::quant_rmse(&x, mk(4), ChannelLayout::ACTIVATION).unwrap();
        prop_assert!(e8 <= e4 + 1e-9, "e8 {e8} > e4 {e4}");
    }
}
