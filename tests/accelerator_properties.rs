//! Property-based tests of the accelerator simulator's conservation laws
//! and the sparse-format/addressing substrates.

use proptest::prelude::*;
use sqdm::accel::{
    Accelerator, AcceleratorConfig, ActAddressMap, ConvWorkload, LayerQuant, SparseChannel,
    WeightAddressMap,
};
use sqdm::sparsity::ChannelPartition;

fn any_workload() -> impl Strategy<Value = ConvWorkload> {
    (1usize..17, 1usize..17, 1usize..9).prop_flat_map(|(k, c, sp)| {
        proptest::collection::vec(0.0f64..1.0, c)
            .prop_map(move |sparsity| ConvWorkload::with_sparsity(k, c, 3, 3, sp, sp, sparsity))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// MAC conservation: a dense run executes exactly the layer's MACs;
    /// a partitioned run executes no more.
    #[test]
    fn mac_conservation(w in any_workload()) {
        let base = Accelerator::new(AcceleratorConfig::dense_baseline());
        let het = Accelerator::new(AcceleratorConfig::paper());
        let sd = base.run_layer(&w, None, LayerQuant::int4());
        prop_assert_eq!(sd.macs_executed, w.total_macs());
        let p = ChannelPartition::balanced(&w.act_sparsity, 0.9);
        let sh = het.run_layer(&w, Some(&p), LayerQuant::int4());
        prop_assert!(sh.macs_executed <= w.total_macs());
    }

    /// Cycles and energy are positive and monotone in precision width.
    #[test]
    fn wider_precision_never_faster(w in any_workload()) {
        let acc = Accelerator::new(AcceleratorConfig::dense_baseline());
        let s4 = acc.run_layer(&w, None, LayerQuant::int4());
        let s8 = acc.run_layer(&w, None, LayerQuant::int8());
        let s16 = acc.run_layer(&w, None, LayerQuant::fp16());
        prop_assert!(s4.cycles <= s8.cycles);
        prop_assert!(s8.cycles <= s16.cycles);
        prop_assert!(s4.energy.total_pj() <= s16.energy.total_pj());
        prop_assert!(s4.cycles > 0);
    }

    /// Higher sparsity never increases heterogeneous cycles (with fresh
    /// balanced partitions).
    #[test]
    fn sparsity_monotonicity(
        k in 4usize..17,
        c in 4usize..17,
        lo in 0.0f64..0.5,
    ) {
        let hi = lo + 0.4;
        let het = Accelerator::new(AcceleratorConfig::paper());
        let w_lo = ConvWorkload::uniform(k, c, 3, 3, 8, 8, lo);
        let w_hi = ConvWorkload::uniform(k, c, 3, 3, 8, 8, hi);
        let p_lo = ChannelPartition::balanced(&w_lo.act_sparsity, 0.9);
        let p_hi = ChannelPartition::balanced(&w_hi.act_sparsity, 0.9);
        let s_lo = het.run_layer(&w_lo, Some(&p_lo), LayerQuant::int4());
        let s_hi = het.run_layer(&w_hi, Some(&p_hi), LayerQuant::int4());
        // Monotone up to the fixed structural overheads (SPE per-channel
        // setup and reduction-tree fill), which routing more channels
        // sparse can add on very small layers.
        let slack = 4 * c as u64 + 14;
        prop_assert!(
            s_hi.cycles <= s_lo.cycles + slack,
            "sparser layer slower: {} vs {}", s_hi.cycles, s_lo.cycles
        );
    }

    /// Sparse bitmap codec round-trips exactly.
    #[test]
    fn sparse_codec_round_trip(
        dense in proptest::collection::vec(
            prop_oneof![3 => Just(0.0f32), 2 => -10.0f32..10.0], 0..300
        )
    ) {
        let enc = SparseChannel::encode(&dense);
        prop_assert_eq!(enc.decode(), dense.clone());
        let nnz_expected = dense.iter().filter(|&&v| v != 0.0).count();
        prop_assert_eq!(enc.nnz(), nnz_expected);
    }

    /// Channel-last activation addressing is a bijection onto 0..len.
    #[test]
    fn act_addressing_bijective(c in 1usize..9, h in 1usize..9, w in 1usize..9) {
        let m = ActAddressMap::channel_last(c, h, w);
        let mut seen = vec![false; m.len()];
        for cc in 0..c {
            for hh in 0..h {
                for ww in 0..w {
                    let a = m.addr(cc, hh, ww);
                    prop_assert!(a < m.len());
                    prop_assert!(!seen[a], "duplicate address {a}");
                    seen[a] = true;
                }
            }
        }
    }

    /// Weight addressing groups every weight of an input channel into its
    /// declared contiguous range.
    #[test]
    fn weight_channel_ranges_partition(k in 1usize..6, c in 1usize..6) {
        let m = WeightAddressMap::new(k, c, 3, 3);
        let mut covered = vec![false; m.len()];
        for ch in 0..c {
            for a in m.input_channel_range(ch) {
                prop_assert!(!covered[a]);
                covered[a] = true;
            }
        }
        prop_assert!(covered.iter().all(|&b| b));
    }

    /// The balanced partition never produces a worse bottleneck than
    /// routing everything dense or everything sparse.
    #[test]
    fn balanced_partition_is_no_worse_than_extremes(
        sparsity in proptest::collection::vec(0.0f64..1.0, 1..64),
        util in 0.5f64..1.0,
    ) {
        let cost = |p: &ChannelPartition| {
            let (d, s) = p.work_split();
            d.max(s / util)
        };
        let balanced = ChannelPartition::balanced(&sparsity, util);
        let all_dense = ChannelPartition::classify(&sparsity, 1.1);
        let all_sparse = ChannelPartition::classify(&sparsity, -0.1);
        prop_assert!(cost(&balanced) <= cost(&all_dense) + 1e-9);
        prop_assert!(cost(&balanced) <= cost(&all_sparse) + 1e-9);
    }
}
