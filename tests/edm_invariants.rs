//! Property-based tests of the EDM substrate's mathematical invariants —
//! no training required.

use proptest::prelude::*;
use sqdm::edm::{
    Dataset, DatasetKind, Denoiser, EdmSchedule, RunConfig, SamplerConfig, UNet, UNetConfig,
};
use sqdm::tensor::{Rng, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// EDM preconditioning identities hold for any sigma:
    /// `c_in²·(σ² + σ_d²) = 1`, `λ(σ)·c_out² = 1`,
    /// `c_skip·(σ² + σ_d²) = σ_d²`.
    #[test]
    fn preconditioning_identities(sigma in 1e-3f32..100.0) {
        let s = EdmSchedule::default();
        let sd2 = s.sigma_data * s.sigma_data;
        let denom = sigma * sigma + sd2;
        prop_assert!((s.c_in(sigma).powi(2) * denom - 1.0).abs() < 1e-4);
        prop_assert!((s.loss_weight(sigma) * s.c_out(sigma).powi(2) - 1.0).abs() < 1e-3);
        prop_assert!((s.c_skip(sigma) * denom - sd2).abs() < 1e-4);
    }

    /// Karras grids are strictly decreasing with the exact endpoints, for
    /// any step count and rho.
    #[test]
    fn karras_grid_well_formed(n in 2usize..40, rho in 1.0f32..10.0) {
        let s = EdmSchedule { rho, ..EdmSchedule::default() };
        let grid = s.sigma_steps(n);
        prop_assert_eq!(grid.len(), n + 1);
        prop_assert!((grid[0] - s.sigma_max).abs() < 1e-2 * s.sigma_max);
        prop_assert!((grid[n - 1] - s.sigma_min).abs() < 1e-4);
        prop_assert_eq!(grid[n], 0.0);
        for w in grid.windows(2) {
            prop_assert!(w[0] > w[1]);
        }
    }

    /// Synthetic datasets always produce images in [-1, 1] with the
    /// requested shape, deterministically per seed.
    #[test]
    fn datasets_bounded_and_deterministic(
        kind_idx in 0usize..4,
        seed in any::<u64>(),
        channels in 1usize..4,
    ) {
        let kind = DatasetKind::ALL[kind_idx];
        let ds = Dataset::new(kind, channels, 8);
        let a = ds.sample(&mut Rng::seed_from(seed));
        let b = ds.sample(&mut Rng::seed_from(seed));
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.dims(), &[channels, 8, 8]);
        prop_assert!(a.max() <= 1.0 && a.min() >= -1.0);
    }
}

#[test]
fn denoiser_interpolates_between_input_and_network() {
    // D(x, σ) = c_skip·x + c_out·F(...): for any fixed σ the output is an
    // affine blend, so scaling the input by t scales the c_skip part
    // exactly.
    let mut rng = Rng::seed_from(5);
    let mut net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
    let den = Denoiser::new(EdmSchedule::default());
    let sigma = 0.2f32;
    let x = Tensor::randn([1, 1, 8, 8], &mut rng);
    let d = den
        .denoise(&mut net, &x, &[sigma], &mut RunConfig::infer())
        .unwrap();
    // Reconstruct F from D and verify the decomposition is consistent:
    // F = (D - c_skip x) / c_out must be bounded by network output scale.
    let s = den.schedule;
    let f = d
        .sub(&x.scale(s.c_skip(sigma)))
        .unwrap()
        .scale(1.0 / s.c_out(sigma));
    assert!(f.abs_max() < 100.0, "implied network output exploded");
}

#[test]
fn per_sample_sigmas_are_independent() {
    // A batch with two different sigmas must produce exactly the same
    // per-sample outputs as two singleton batches.
    let mut rng = Rng::seed_from(6);
    let mut net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
    let den = Denoiser::new(EdmSchedule::default());
    let x0 = Tensor::randn([1, 1, 8, 8], &mut rng);
    let x1 = Tensor::randn([1, 1, 8, 8], &mut rng);
    let mut batch = Tensor::zeros([2, 1, 8, 8]);
    batch.as_mut_slice()[..64].copy_from_slice(x0.as_slice());
    batch.as_mut_slice()[64..].copy_from_slice(x1.as_slice());

    let joint = den
        .denoise(&mut net, &batch, &[0.5, 3.0], &mut RunConfig::infer())
        .unwrap();
    let solo0 = den
        .denoise(&mut net, &x0, &[0.5], &mut RunConfig::infer())
        .unwrap();
    let solo1 = den
        .denoise(&mut net, &x1, &[3.0], &mut RunConfig::infer())
        .unwrap();

    let j0 = Tensor::from_vec(joint.as_slice()[..64].to_vec(), [1, 1, 8, 8]).unwrap();
    let j1 = Tensor::from_vec(joint.as_slice()[64..].to_vec(), [1, 1, 8, 8]).unwrap();
    // GroupNorm statistics are per-sample, so the results must agree to
    // floating-point tolerance.
    assert!(
        j0.mse(&solo0).unwrap() < 1e-9,
        "{}",
        j0.mse(&solo0).unwrap()
    );
    assert!(j1.mse(&solo1).unwrap() < 1e-9);
}

#[test]
fn sampler_step_count_trades_quality_for_speed() {
    // More steps must not blow up; both produce finite bounded samples.
    let mut rng = Rng::seed_from(7);
    let mut net = UNet::new(UNetConfig::micro(), &mut rng).unwrap();
    let den = Denoiser::new(EdmSchedule::default());
    for steps in [2usize, 4, 16] {
        let mut r = Rng::seed_from(9);
        let s =
            sqdm::edm::sample(&mut net, &den, 1, SamplerConfig { steps }, None, &mut r).unwrap();
        assert!(s.as_slice().iter().all(|v| v.is_finite()), "steps {steps}");
        // Very coarse grids on an untrained net take one huge stride; the
        // contraction bound only applies once the grid resolves the
        // trajectory.
        if steps >= 4 {
            assert!(s.abs_max() < 50.0, "steps {steps}: {}", s.abs_max());
        }
    }
}
